#include "net/wire.h"

#include <algorithm>
#include <utility>

namespace atr {
namespace net {
namespace {

// Shared decode preamble: every payload starts with the u64 request_id.
bool ReadRequestId(ByteReader& reader, uint64_t* request_id) {
  return reader.ReadU64(request_id);
}

Status DecodeError(const char* what) {
  return Status::InvalidArgument(std::string(what) +
                                 ": truncated or malformed payload");
}

// Decoders reject trailing garbage: a payload must be consumed exactly.
Status FinishDecode(const ByteReader& reader, const char* what) {
  if (!reader.ok()) return DecodeError(what);
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": trailing bytes after payload");
  }
  return Status::Ok();
}

void WriteEndpointVector(ByteWriter& writer,
                         const std::vector<EdgeEndpoints>& edges) {
  writer.WriteU32(static_cast<uint32_t>(edges.size()));
  for (const EdgeEndpoints& e : edges) {
    writer.WriteU32(e.u);
    writer.WriteU32(e.v);
  }
}

bool ReadEndpointVector(ByteReader& reader, std::vector<EdgeEndpoints>* out) {
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return false;
  if (reader.remaining() / 8 < count) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    reader.ReadU32(&(*out)[i].u);
    reader.ReadU32(&(*out)[i].v);
  }
  return reader.ok();
}

std::vector<uint8_t> FinishFrame(MsgType type, ByteWriter& payload) {
  return EncodeFrame(type, payload.buffer());
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "Ping";
    case MsgType::kListGraphs: return "ListGraphs";
    case MsgType::kInfo: return "Info";
    case MsgType::kSubmit: return "Submit";
    case MsgType::kWait: return "Wait";
    case MsgType::kCancel: return "Cancel";
    case MsgType::kUpdateGraph: return "UpdateGraph";
    case MsgType::kCompact: return "Compact";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kPingResponse: return "PingResponse";
    case MsgType::kListGraphsResponse: return "ListGraphsResponse";
    case MsgType::kInfoResponse: return "InfoResponse";
    case MsgType::kSubmitResponse: return "SubmitResponse";
    case MsgType::kWaitResponse: return "WaitResponse";
    case MsgType::kCancelResponse: return "CancelResponse";
    case MsgType::kUpdateGraphResponse: return "UpdateGraphResponse";
    case MsgType::kCompactResponse: return "CompactResponse";
    case MsgType::kShutdownResponse: return "ShutdownResponse";
    case MsgType::kError: return "Error";
  }
  return "Unknown";
}

std::vector<uint8_t> EncodeFrame(MsgType type,
                                 std::span<const uint8_t> payload) {
  ByteWriter out;
  out.WriteU32(static_cast<uint32_t>(payload.size()));
  out.WriteU32(static_cast<uint32_t>(type));
  out.WriteBytes(payload.data(), payload.size());
  return out.TakeBuffer();
}

void FrameParser::Feed(const uint8_t* data, size_t size) {
  if (!status_.ok()) return;  // poisoned: drop everything
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameParser::Next() {
  if (!status_.ok() || buffer_.size() < 8) return std::nullopt;
  uint32_t payload_len = 0, raw_type = 0;
  for (int i = 0; i < 4; ++i) payload_len |= uint32_t(buffer_[i]) << (8 * i);
  for (int i = 0; i < 4; ++i) {
    raw_type |= uint32_t(buffer_[4 + i]) << (8 * i);
  }
  if (payload_len > kMaxFramePayload) {
    status_ = Status::InvalidArgument(
        "frame payload length " + std::to_string(payload_len) +
        " exceeds kMaxFramePayload");
    buffer_.clear();
    return std::nullopt;
  }
  if (buffer_.size() < 8 + size_t(payload_len)) return std::nullopt;

  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.payload.assign(buffer_.begin() + 8,
                       buffer_.begin() + 8 + payload_len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 8 + payload_len);
  return frame;
}

// --- ErrorResponse --------------------------------------------------------

std::vector<uint8_t> ErrorResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU32(static_cast<uint32_t>(code));
  w.WriteString(message);
  w.WriteU32(retry_after_ms);
  return FinishFrame(MsgType::kError, w);
}

StatusOr<ErrorResponse> ErrorResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ErrorResponse out;
  uint32_t raw_code = 0;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU32(&raw_code) ||
      !r.ReadString(&out.message) || !r.ReadU32(&out.retry_after_ms)) {
    return DecodeError("ErrorResponse");
  }
  if (raw_code == 0 ||
      raw_code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("ErrorResponse: unknown status code " +
                                   std::to_string(raw_code));
  }
  out.code = static_cast<StatusCode>(raw_code);
  if (Status s = FinishDecode(r, "ErrorResponse"); !s.ok()) return s;
  return out;
}

Status ErrorResponse::ToStatus() const {
  return Status(code, message);
}

// --- Ping -----------------------------------------------------------------

std::vector<uint8_t> PingRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  return FinishFrame(MsgType::kPing, w);
}

StatusOr<PingRequest> PingRequest::Decode(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  PingRequest out;
  if (!ReadRequestId(r, &out.request_id)) return DecodeError("PingRequest");
  if (Status s = FinishDecode(r, "PingRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> PingResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  return FinishFrame(MsgType::kPingResponse, w);
}

StatusOr<PingResponse> PingResponse::Decode(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  PingResponse out;
  if (!ReadRequestId(r, &out.request_id)) return DecodeError("PingResponse");
  if (Status s = FinishDecode(r, "PingResponse"); !s.ok()) return s;
  return out;
}

// --- ListGraphs -----------------------------------------------------------

std::vector<uint8_t> ListGraphsRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  return FinishFrame(MsgType::kListGraphs, w);
}

StatusOr<ListGraphsRequest> ListGraphsRequest::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ListGraphsRequest out;
  if (!ReadRequestId(r, &out.request_id)) {
    return DecodeError("ListGraphsRequest");
  }
  if (Status s = FinishDecode(r, "ListGraphsRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> ListGraphsResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) w.WriteString(name);
  return FinishFrame(MsgType::kListGraphsResponse, w);
}

StatusOr<ListGraphsResponse> ListGraphsResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ListGraphsResponse out;
  uint32_t count = 0;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU32(&count)) {
    return DecodeError("ListGraphsResponse");
  }
  // Each name costs at least its 4-byte length prefix.
  if (r.remaining() / 4 < count) return DecodeError("ListGraphsResponse");
  out.names.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.ReadString(&out.names[i])) return DecodeError("ListGraphsResponse");
  }
  if (Status s = FinishDecode(r, "ListGraphsResponse"); !s.ok()) return s;
  return out;
}

// --- Info -----------------------------------------------------------------

std::vector<uint8_t> InfoRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteString(graph);
  return FinishFrame(MsgType::kInfo, w);
}

StatusOr<InfoRequest> InfoRequest::Decode(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  InfoRequest out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadString(&out.graph)) {
    return DecodeError("InfoRequest");
  }
  if (Status s = FinishDecode(r, "InfoRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> InfoResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteString(info.name);
  w.WriteU32(info.num_vertices);
  w.WriteU32(info.num_edges);
  w.WriteU32(info.decomposition_builds);
  w.WriteU32(info.max_trussness);
  w.WriteU64(info.version);
  w.WriteU64(info.delta_updates);
  w.WriteU64(info.delta_chain_length);
  w.WriteU64(info.jobs_submitted);
  return FinishFrame(MsgType::kInfoResponse, w);
}

StatusOr<InfoResponse> InfoResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  InfoResponse out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadString(&out.info.name) ||
      !r.ReadU32(&out.info.num_vertices) || !r.ReadU32(&out.info.num_edges) ||
      !r.ReadU32(&out.info.decomposition_builds) ||
      !r.ReadU32(&out.info.max_trussness) || !r.ReadU64(&out.info.version) ||
      !r.ReadU64(&out.info.delta_updates) ||
      !r.ReadU64(&out.info.delta_chain_length) ||
      !r.ReadU64(&out.info.jobs_submitted)) {
    return DecodeError("InfoResponse");
  }
  if (Status s = FinishDecode(r, "InfoResponse"); !s.ok()) return s;
  return out;
}

// --- Submit ---------------------------------------------------------------

SolverOptions WireSolverOptions::ToSolverOptions() const {
  SolverOptions options;
  options.budget = budget;
  options.budget_checkpoints = budget_checkpoints;
  options.seed = seed;
  options.trials = trials;
  options.use_incremental = use_incremental;
  return options;
}

std::vector<uint8_t> SubmitRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteString(graph);
  w.WriteString(solver);
  w.WriteU32(options.budget);
  w.WriteU32Vector(options.budget_checkpoints);
  w.WriteU64(options.seed);
  w.WriteU32(options.trials);
  w.WriteU8(options.use_incremental ? 1 : 0);
  w.WriteString(tenant);
  w.WriteU32(static_cast<uint32_t>(priority));
  // Revision-3 trailing fields; a request without an explicit plan stays
  // byte-identical to a revision-2 frame.
  if (plan.has_value()) {
    w.WriteU8(static_cast<uint8_t>(plan->algorithm));
    w.WriteU32(plan->chunk_size);
    w.WriteU32(plan->fanout_cutoff);
    w.WriteU8(plan->prefilter ? 1 : 0);
  }
  return FinishFrame(MsgType::kSubmit, w);
}

StatusOr<SubmitRequest> SubmitRequest::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  SubmitRequest out;
  uint8_t use_incremental = 0;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadString(&out.graph) ||
      !r.ReadString(&out.solver) || !r.ReadU32(&out.options.budget) ||
      !r.ReadU32Vector(&out.options.budget_checkpoints) ||
      !r.ReadU64(&out.options.seed) || !r.ReadU32(&out.options.trials) ||
      !r.ReadU8(&use_incremental)) {
    return DecodeError("SubmitRequest");
  }
  out.options.use_incremental = use_incremental != 0;
  // Tenancy fields arrived in protocol revision 2; a payload that ends
  // here is a revision-1 Submit and maps to the default tenant at
  // priority 0 (docs/PROTOCOL.md, "Version compatibility").
  if (r.remaining() > 0) {
    uint32_t raw_priority = 0;
    if (!r.ReadString(&out.tenant) || !r.ReadU32(&raw_priority)) {
      return DecodeError("SubmitRequest");
    }
    out.priority = static_cast<int32_t>(raw_priority);
  }
  // Plan selection arrived in revision 3; a payload ending at the rev-2
  // fields leaves the plan unset (server default). Unknown algorithm ids
  // are rejected — untrusted-bytes boundary, never aborts.
  if (r.remaining() > 0) {
    uint8_t algorithm = 0;
    uint8_t prefilter = 0;
    DecompositionPlan plan;
    if (!r.ReadU8(&algorithm) || !r.ReadU32(&plan.chunk_size) ||
        !r.ReadU32(&plan.fanout_cutoff) || !r.ReadU8(&prefilter)) {
      return DecodeError("SubmitRequest");
    }
    if (algorithm > static_cast<uint8_t>(PeelAlgorithm::kBspCoreThenTruss)) {
      return DecodeError("SubmitRequest");
    }
    plan.algorithm = static_cast<PeelAlgorithm>(algorithm);
    plan.prefilter = prefilter != 0;
    out.plan = plan;
  }
  if (Status s = FinishDecode(r, "SubmitRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> SubmitResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU64(job_id);
  return FinishFrame(MsgType::kSubmitResponse, w);
}

StatusOr<SubmitResponse> SubmitResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  SubmitResponse out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU64(&out.job_id)) {
    return DecodeError("SubmitResponse");
  }
  if (Status s = FinishDecode(r, "SubmitResponse"); !s.ok()) return s;
  return out;
}

// --- Wait -----------------------------------------------------------------

std::vector<uint8_t> WaitRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU64(job_id);
  return FinishFrame(MsgType::kWait, w);
}

StatusOr<WaitRequest> WaitRequest::Decode(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  WaitRequest out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU64(&out.job_id)) {
    return DecodeError("WaitRequest");
  }
  if (Status s = FinishDecode(r, "WaitRequest"); !s.ok()) return s;
  return out;
}

WireSolveResult WireSolveResult::FromSolveResult(const SolveResult& result) {
  WireSolveResult wire;
  wire.solver = result.solver;
  wire.anchor_edges.assign(result.anchor_edges.begin(),
                           result.anchor_edges.end());
  wire.anchor_vertices.assign(result.anchor_vertices.begin(),
                              result.anchor_vertices.end());
  wire.total_gain = result.total_gain;
  wire.gain_at_checkpoint = result.gain_at_checkpoint;
  wire.seconds = result.seconds;
  wire.stopped_early = result.stopped_early;
  return wire;
}

std::vector<uint8_t> WaitResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU64(job_id);
  w.WriteString(result.solver);
  w.WriteU32Vector(result.anchor_edges);
  w.WriteU32Vector(result.anchor_vertices);
  w.WriteU64(result.total_gain);
  w.WriteU64Vector(result.gain_at_checkpoint);
  w.WriteDouble(result.seconds);
  w.WriteU8(result.stopped_early ? 1 : 0);
  return FinishFrame(MsgType::kWaitResponse, w);
}

StatusOr<WaitResponse> WaitResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  WaitResponse out;
  uint8_t stopped_early = 0;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU64(&out.job_id) ||
      !r.ReadString(&out.result.solver) ||
      !r.ReadU32Vector(&out.result.anchor_edges) ||
      !r.ReadU32Vector(&out.result.anchor_vertices) ||
      !r.ReadU64(&out.result.total_gain) ||
      !r.ReadU64Vector(&out.result.gain_at_checkpoint) ||
      !r.ReadDouble(&out.result.seconds) || !r.ReadU8(&stopped_early)) {
    return DecodeError("WaitResponse");
  }
  out.result.stopped_early = stopped_early != 0;
  if (Status s = FinishDecode(r, "WaitResponse"); !s.ok()) return s;
  return out;
}

// --- Cancel ---------------------------------------------------------------

std::vector<uint8_t> CancelRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU64(job_id);
  return FinishFrame(MsgType::kCancel, w);
}

StatusOr<CancelRequest> CancelRequest::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  CancelRequest out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU64(&out.job_id)) {
    return DecodeError("CancelRequest");
  }
  if (Status s = FinishDecode(r, "CancelRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> CancelResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU8(cancelled ? 1 : 0);
  return FinishFrame(MsgType::kCancelResponse, w);
}

StatusOr<CancelResponse> CancelResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  CancelResponse out;
  uint8_t cancelled = 0;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU8(&cancelled)) {
    return DecodeError("CancelResponse");
  }
  out.cancelled = cancelled != 0;
  if (Status s = FinishDecode(r, "CancelResponse"); !s.ok()) return s;
  return out;
}

// --- UpdateGraph ----------------------------------------------------------

std::vector<uint8_t> UpdateGraphRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteString(graph);
  WriteEndpointVector(w, delta.add);
  WriteEndpointVector(w, delta.remove);
  return FinishFrame(MsgType::kUpdateGraph, w);
}

StatusOr<UpdateGraphRequest> UpdateGraphRequest::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  UpdateGraphRequest out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadString(&out.graph) ||
      !ReadEndpointVector(r, &out.delta.add) ||
      !ReadEndpointVector(r, &out.delta.remove)) {
    return DecodeError("UpdateGraphRequest");
  }
  if (Status s = FinishDecode(r, "UpdateGraphRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> UpdateGraphResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteU64(version);
  w.WriteU32(num_vertices);
  w.WriteU32(num_edges);
  return FinishFrame(MsgType::kUpdateGraphResponse, w);
}

StatusOr<UpdateGraphResponse> UpdateGraphResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  UpdateGraphResponse out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadU64(&out.version) ||
      !r.ReadU32(&out.num_vertices) || !r.ReadU32(&out.num_edges)) {
    return DecodeError("UpdateGraphResponse");
  }
  if (Status s = FinishDecode(r, "UpdateGraphResponse"); !s.ok()) return s;
  return out;
}

// --- Compact --------------------------------------------------------------

std::vector<uint8_t> CompactRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  w.WriteString(graph);
  return FinishFrame(MsgType::kCompact, w);
}

StatusOr<CompactRequest> CompactRequest::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  CompactRequest out;
  if (!ReadRequestId(r, &out.request_id) || !r.ReadString(&out.graph)) {
    return DecodeError("CompactRequest");
  }
  if (Status s = FinishDecode(r, "CompactRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> CompactResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  return FinishFrame(MsgType::kCompactResponse, w);
}

StatusOr<CompactResponse> CompactResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  CompactResponse out;
  if (!ReadRequestId(r, &out.request_id)) return DecodeError("CompactResponse");
  if (Status s = FinishDecode(r, "CompactResponse"); !s.ok()) return s;
  return out;
}

// --- Shutdown -------------------------------------------------------------

std::vector<uint8_t> ShutdownRequest::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  return FinishFrame(MsgType::kShutdown, w);
}

StatusOr<ShutdownRequest> ShutdownRequest::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ShutdownRequest out;
  if (!ReadRequestId(r, &out.request_id)) return DecodeError("ShutdownRequest");
  if (Status s = FinishDecode(r, "ShutdownRequest"); !s.ok()) return s;
  return out;
}

std::vector<uint8_t> ShutdownResponse::EncodeFrame() const {
  ByteWriter w;
  w.WriteU64(request_id);
  return FinishFrame(MsgType::kShutdownResponse, w);
}

StatusOr<ShutdownResponse> ShutdownResponse::Decode(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ShutdownResponse out;
  if (!ReadRequestId(r, &out.request_id)) {
    return DecodeError("ShutdownResponse");
  }
  if (Status s = FinishDecode(r, "ShutdownResponse"); !s.ok()) return s;
  return out;
}

}  // namespace net
}  // namespace atr
