// Wire protocol for the networked ATR server: length-prefixed binary
// frames over a byte stream (TCP).
//
// Frame layout (little-endian):
//
//   u32 payload_len      bytes that follow the 8-byte header
//   u32 type             MsgType
//   payload              message-specific, see below
//
// Every request payload begins with a u64 request_id chosen by the
// client; the matching response (or error) echoes it, so clients may
// pipeline many requests on one connection and match responses out of
// order. Response types are request type + 100; type 255 is the
// structured error response, which any request can receive instead of
// its success response. kError carries a StatusCode, a message, and a
// retry_after_ms hint (> 0 only for kResourceExhausted — the server's
// admission-control rejection when the pending-job queue is full).
//
// FrameParser is the incremental decoder used by both server and client:
// feed it raw bytes as they arrive, pop complete frames. It never
// crashes on hostile input (fuzz/fuzz_wire.cc drives it); a frame whose
// length field exceeds kMaxFramePayload poisons the parser and the
// connection is dropped.

#ifndef ATR_NET_WIRE_H_
#define ATR_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/solver.h"
#include "graph/graph.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace atr {
namespace net {

// Frames larger than this are protocol violations, not big messages:
// the parser refuses them instead of buffering unbounded attacker-chosen
// allocations.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

enum class MsgType : uint32_t {
  kPing = 1,
  kListGraphs = 2,
  kInfo = 3,
  kSubmit = 4,
  kWait = 5,
  kCancel = 6,
  kUpdateGraph = 7,
  kCompact = 8,
  kShutdown = 9,

  // Responses: request type + 100.
  kPingResponse = 101,
  kListGraphsResponse = 102,
  kInfoResponse = 103,
  kSubmitResponse = 104,
  kWaitResponse = 105,
  kCancelResponse = 106,
  kUpdateGraphResponse = 107,
  kCompactResponse = 108,
  kShutdownResponse = 109,

  kError = 255,
};

const char* MsgTypeName(MsgType type);

// One complete decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<uint8_t> payload;
};

// Serializes one frame (header + payload).
std::vector<uint8_t> EncodeFrame(MsgType type,
                                 std::span<const uint8_t> payload);

// Incremental frame decoder. Usage:
//
//   parser.Feed(bytes, n);
//   while (auto frame = parser.Next()) { ... }
//   if (!parser.ok()) drop_connection(parser.status());
//
// Next() returns nullopt when no complete frame is buffered (and always
// after the parser failed). Failure is sticky: an oversize length field
// means the stream is garbage from here on.
class FrameParser {
 public:
  void Feed(const uint8_t* data, size_t size);

  std::optional<Frame> Next();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Bytes buffered but not yet returned as frames.
  size_t buffered() const { return buffer_.size(); }

 private:
  std::deque<uint8_t> buffer_;
  Status status_ = Status::Ok();
};

// --- Request / response payloads -----------------------------------------
//
// Each struct has EncodeFrame() (the full wire frame, header included)
// and a static Decode(payload) that validates shape and bounds. Decoders
// must survive hostile bytes: they return InvalidArgument, never crash.

struct ErrorResponse {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  // > 0: retry the request after this many milliseconds (admission
  // control said "later", not "never").
  uint32_t retry_after_ms = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<ErrorResponse> Decode(std::span<const uint8_t> payload);

  // The Status a client surfaces for this error.
  Status ToStatus() const;
};

struct PingRequest {
  uint64_t request_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<PingRequest> Decode(std::span<const uint8_t> payload);
};

struct PingResponse {
  uint64_t request_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<PingResponse> Decode(std::span<const uint8_t> payload);
};

struct ListGraphsRequest {
  uint64_t request_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<ListGraphsRequest> Decode(std::span<const uint8_t> payload);
};

struct ListGraphsResponse {
  uint64_t request_id = 0;
  std::vector<std::string> names;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<ListGraphsResponse> Decode(std::span<const uint8_t> payload);
};

struct InfoRequest {
  uint64_t request_id = 0;
  std::string graph;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<InfoRequest> Decode(std::span<const uint8_t> payload);
};

struct InfoResponse {
  uint64_t request_id = 0;
  AtrService::GraphInfo info;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<InfoResponse> Decode(std::span<const uint8_t> payload);
};

// The SolverOptions subset that travels over the wire. Progress/cancel
// callbacks and thread counts are process-local concerns and stay out.
struct WireSolverOptions {
  uint32_t budget = 1;
  std::vector<uint32_t> budget_checkpoints;
  uint64_t seed = 1;
  uint32_t trials = 100;
  bool use_incremental = false;

  SolverOptions ToSolverOptions() const;
};

struct SubmitRequest {
  uint64_t request_id = 0;
  std::string graph;
  std::string solver;
  WireSolverOptions options;
  // Fair-share scheduling identity (protocol revision 2). Older clients
  // omit both trailing fields; the decoder maps that to the default
  // tenant ("") at priority 0.
  std::string tenant;
  int32_t priority = 0;
  // Decomposition plan selection (protocol revision 3): u8 algorithm id,
  // u32 chunk_size, u32 fanout_cutoff, u8 prefilter, trailing after the
  // rev-2 fields and only encoded when set. Absent — any frame ending at
  // priority or earlier — means "server default" (nullopt). Unknown
  // algorithm ids are a decode error, not a fallback: silently running a
  // different kernel than a newer client asked for would be misleading.
  std::optional<DecompositionPlan> plan;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<SubmitRequest> Decode(std::span<const uint8_t> payload);
};

struct SubmitResponse {
  uint64_t request_id = 0;
  uint64_t job_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<SubmitResponse> Decode(std::span<const uint8_t> payload);
};

struct WaitRequest {
  uint64_t request_id = 0;
  uint64_t job_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<WaitRequest> Decode(std::span<const uint8_t> payload);
};

// The SolveResult subset that travels over the wire (per-round records
// stay server-side; anchors, gains, and timing travel).
struct WireSolveResult {
  std::string solver;
  std::vector<uint32_t> anchor_edges;
  std::vector<uint32_t> anchor_vertices;
  uint64_t total_gain = 0;
  std::vector<uint64_t> gain_at_checkpoint;
  double seconds = 0.0;
  bool stopped_early = false;

  static WireSolveResult FromSolveResult(const SolveResult& result);
};

struct WaitResponse {
  uint64_t request_id = 0;
  uint64_t job_id = 0;
  WireSolveResult result;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<WaitResponse> Decode(std::span<const uint8_t> payload);
};

struct CancelRequest {
  uint64_t request_id = 0;
  uint64_t job_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<CancelRequest> Decode(std::span<const uint8_t> payload);
};

struct CancelResponse {
  uint64_t request_id = 0;
  bool cancelled = false;  // false: the job had already finished

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<CancelResponse> Decode(std::span<const uint8_t> payload);
};

struct UpdateGraphRequest {
  uint64_t request_id = 0;
  std::string graph;
  GraphDelta delta;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<UpdateGraphRequest> Decode(std::span<const uint8_t> payload);
};

struct UpdateGraphResponse {
  uint64_t request_id = 0;
  uint64_t version = 0;
  uint32_t num_vertices = 0;
  uint32_t num_edges = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<UpdateGraphResponse> Decode(std::span<const uint8_t> payload);
};

struct CompactRequest {
  uint64_t request_id = 0;
  std::string graph;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<CompactRequest> Decode(std::span<const uint8_t> payload);
};

struct CompactResponse {
  uint64_t request_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<CompactResponse> Decode(std::span<const uint8_t> payload);
};

struct ShutdownRequest {
  uint64_t request_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<ShutdownRequest> Decode(std::span<const uint8_t> payload);
};

struct ShutdownResponse {
  uint64_t request_id = 0;

  std::vector<uint8_t> EncodeFrame() const;
  static StatusOr<ShutdownResponse> Decode(std::span<const uint8_t> payload);
};

}  // namespace net
}  // namespace atr

#endif  // ATR_NET_WIRE_H_
