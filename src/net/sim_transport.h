// SimTransport — an in-process simulated network implementing the
// Transport seam (net/transport.h), so AtrServer's poll loop can be
// driven from scripted or fuzzed byte streams with deterministic fault
// injection and virtual time. No sockets, no kernel buffers, no
// wall-clock sleeps.
//
// Test-side view:
//
//   SimTransport sim;                    // must outlive the server
//   AtrServer::Options options;
//   options.transport = &sim;
//   AtrServer server(options);
//   server.Start();                      // loop thread polls through sim
//
//   auto conn = sim.Connect();           // lands on the simulated backlog
//   conn->Send(ping.EncodeFrame());      // client → server bytes
//   FrameParser parser;
//   std::vector<Frame> frames;
//   PumpFrames(*conn, parser, 1, &frames);   // server → client frames
//
// Fault injection (all per connection, all deterministic):
//
//   conn->set_max_read_chunk(1);         // server recv returns ≤ 1 byte:
//                                        // every frame torn at every byte
//   conn->set_max_write_chunk(7);        // short writes: send accepts ≤ 7
//   conn->set_write_space(64);           // "kernel buffer" of 64 bytes:
//                                        // EAGAIN until TakeOutput drains
//   conn->FailNextRead(EINTR);           // one-shot errno on next recv
//   conn->FailNextWrite(EPIPE);          // one-shot errno on next send
//   conn->Reset(ECONNRESET);             // sticky errno on reads
//   conn->Close();                       // clean EOF after queued bytes
//   sim.InjectAcceptError(EMFILE);       // next accept fails with EMFILE
//
// Virtual time: NowMs() starts at 0 and only moves when the test calls
// AdvanceTimeMs() — idle-timeout tests advance the clock instead of
// sleeping, so they are exact at the millisecond boundary. With
// set_auto_advance(true) (the churn soak uses this) the clock instead
// jumps forward by the server's own poll timeout whenever the loop goes
// idle, so reap/retry paths fire "naturally" under load.
//
// Blocking model: SimTransport::Poll blocks the server's loop thread on
// a condition variable until an event arrives (bytes, a connection, a
// wake-pipe write, injected faults) or the virtual clock reaches the
// poll deadline. When neither happens within a small real-time window it
// returns 0 *without* advancing virtual time, which keeps the loop
// responsive to stop requests while the clock stays frozen. All methods
// are thread-safe; Connection handles stay valid after the transport is
// gone (they share ownership of the core state).

#ifndef ATR_NET_SIM_TRANSPORT_H_
#define ATR_NET_SIM_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"

namespace atr {
namespace net {

namespace sim_internal {
struct Core;
struct ConnState;
}  // namespace sim_internal

class SimTransport : public Transport {
 public:
  // Test-side endpoint of one simulated connection. Thread-safe.
  class Connection {
   public:
    // Queues client → server bytes and wakes the server's poll.
    void Send(const void* data, size_t len);
    void Send(const std::vector<uint8_t>& bytes);

    // Clean shutdown from the client side: the server reads everything
    // already queued, then sees EOF.
    void Close();

    // Hard failure: every subsequent server read fails with `err`.
    void Reset(int err);

    // Drains server → client bytes (also frees simulated write space).
    std::vector<uint8_t> TakeOutput();

    // Real-time bounded waits for server activity. Return false on
    // timeout. WaitForOutput succeeds once at least `min_unread` bytes
    // are queued client-side (drain with TakeOutput).
    bool WaitForOutput(size_t min_unread, int timeout_real_ms = 5000);
    bool WaitClosedByServer(int timeout_real_ms = 5000);

    bool closed_by_server() const;
    bool accepted_by_server() const;
    // Client → server bytes the server has not read yet. Waiting for
    // this to hit 0 is the deterministic way to guarantee the server
    // observed a torn byte boundary before the next Send.
    size_t pending_input() const;
    bool WaitForInputDrained(int timeout_real_ms = 5000);
    // Unread server → client bytes currently queued.
    size_t pending_output() const;
    // Cumulative server → client bytes ever written.
    uint64_t total_output_bytes() const;

    // Fault injection; see the header comment. A limit of 0 means "no
    // bytes ever", SIZE_MAX (the default) unlimited.
    void set_max_read_chunk(size_t n);
    void set_max_write_chunk(size_t n);
    void set_write_space(size_t n);
    void FailNextRead(int err);
    void FailNextWrite(int err);

   private:
    friend class SimTransport;
    Connection(std::shared_ptr<sim_internal::Core> core,
               std::shared_ptr<sim_internal::ConnState> state);
    std::shared_ptr<sim_internal::Core> core_;
    std::shared_ptr<sim_internal::ConnState> state_;
  };

  SimTransport();
  ~SimTransport() override;

  // Places a new simulated connection on the listener backlog (the
  // server accepts it on its next poll round).
  std::shared_ptr<Connection> Connect();

  // Advances the virtual clock and wakes the server loop.
  void AdvanceTimeMs(int64_t delta_ms);
  int64_t now_ms() const;

  // The next `times` Accept calls made while a connection is pending
  // fail with `err` instead of handing it out (EMFILE/ENFILE shed-path
  // testing). The error waits for a pending connection — matching
  // kernel semantics, where descriptor exhaustion surfaces while
  // accepting a real connection — so the order of InjectAcceptError
  // and Connect relative to the server's poll loop does not matter.
  void InjectAcceptError(int err, int times = 1);

  // Auto-advance: when the loop goes idle, jump the virtual clock to the
  // poll deadline instead of freezing (default off).
  void set_auto_advance(bool on);
  // Real-time window Poll blocks for when nothing is ready and the
  // clock is frozen (default 50 ms; the fuzzer shrinks it).
  void set_idle_poll_real_ms(int ms);

  // Invariant counters for harness assertions.
  int open_connection_fds() const;  // conn descriptors the server holds
  int open_fds() const;             // every live descriptor incl. listener
  uint64_t accepts() const;

  // Transport interface (the server side).
  Status OpenListener(const std::string& host, uint16_t port, int* listen_fd,
                      uint16_t* bound_port) override;
  Status OpenWakePipe(int* read_fd, int* write_fd) override;
  int OpenSpare() override;
  int Poll(pollfd* fds, size_t nfds, int timeout_ms, int* err) override;
  int Accept(int listen_fd, int* err) override;
  ssize_t Read(int fd, void* buf, size_t len, int* err) override;
  ssize_t Write(int fd, const void* buf, size_t len, int* err) override;
  void Close(int fd) override;
  int64_t NowMs() override;

 private:
  std::shared_ptr<sim_internal::Core> core_;
};

// Pumps server → client bytes from `conn` through `parser` until `want`
// complete frames have accumulated in *frames (appended), the server
// closes the connection, or `timeout_real_ms` elapses. Returns true when
// the target count was reached. Shared by the sim tests, the fuzzer and
// the churn soak.
bool PumpFrames(SimTransport::Connection& conn, FrameParser& parser,
                size_t want, std::vector<Frame>* frames,
                int timeout_real_ms = 5000);

}  // namespace net
}  // namespace atr

#endif  // ATR_NET_SIM_TRANSPORT_H_
