// Transport — the raw I/O seam under AtrServer.
//
// The server's poll loop used to call poll/accept4/recv/send/close and
// std::chrono::steady_clock directly, which meant its connection state
// machine (pipelining, partial reads, short writes, EMFILE shedding,
// slow-consumer high-water marks, idle reaping) could only be exercised
// over real TCP sockets — where torn frames, descriptor exhaustion and
// timing edges are nearly impossible to reproduce deterministically.
// This interface extracts exactly that syscall surface:
//
//   * PosixTransport (this header) is the production default and is a
//     thin veneer over the real syscalls — AtrServer behaves byte-
//     identically to the pre-seam code when running on it.
//   * SimTransport (net/sim_transport.h) is an in-process simulated
//     network with scripted byte streams, injectable partial reads /
//     short writes / errno faults, and a virtual monotonic clock. Every
//     deterministic server regression (tests/server_sim_test.cc), the
//     connection-state-machine fuzzer (fuzz/fuzz_server.cc) and the
//     churn soak (bench/soak_churn.cc) drive AtrServer through it.
//
// Contract notes:
//   * Accept/Read/Write report failures by returning a negative value
//     and storing an errno-style code in *err (never by mutating the
//     global errno contractually — PosixTransport happens to, but
//     callers must use *err). EINTR/EAGAIN retry policy stays in the
//     caller, where it is part of the state machine under test.
//   * Read and Write must work on both sockets and pipe descriptors:
//     the wake pipe is written from worker threads (NotifyJobDone) and
//     from RequestStop, which may run in a signal handler — so Write
//     must stay async-signal-safe for PosixTransport (one send/write
//     call, no locks) and merely thread-safe for SimTransport.
//   * NowMs is a monotonic milliseconds clock. Under SimTransport it is
//     virtual: idle-timeout and flush-deadline paths become testable
//     without wall-clock sleeps.

#ifndef ATR_NET_TRANSPORT_H_
#define ATR_NET_TRANSPORT_H_

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

#include "util/status.h"

namespace atr {
namespace net {

class Transport {
 public:
  virtual ~Transport() = default;

  // Binds a listening endpoint. On success stores the listener's
  // descriptor in *listen_fd and the actually-bound port in *bound_port
  // (meaningful when `port` was 0 = ephemeral).
  virtual Status OpenListener(const std::string& host, uint16_t port,
                              int* listen_fd, uint16_t* bound_port) = 0;

  // A non-blocking self-pipe for cross-thread wakeups.
  virtual Status OpenWakePipe(int* read_fd, int* write_fd) = 0;

  // Reserve descriptor for the EMFILE shed path (see AtrServer); -1 when
  // none is available.
  virtual int OpenSpare() = 0;

  // poll(2) semantics over descriptors from this transport. Returns the
  // number of entries with nonzero revents, 0 on timeout, negative with
  // *err set on failure.
  virtual int Poll(pollfd* fds, size_t nfds, int timeout_ms, int* err) = 0;

  // Non-blocking accept on a listener descriptor. Returns the new
  // connection descriptor, or a negative value with *err set (EAGAIN
  // when the backlog is empty, EMFILE/ENFILE under descriptor
  // exhaustion, ECONNABORTED when the peer gave up, ...).
  virtual int Accept(int listen_fd, int* err) = 0;

  // read(2)/write(2) semantics: bytes transferred, 0 on EOF (Read only),
  // negative with *err set otherwise. Writes to sockets must not raise
  // SIGPIPE (PosixTransport sends with MSG_NOSIGNAL).
  virtual ssize_t Read(int fd, void* buf, size_t len, int* err) = 0;
  virtual ssize_t Write(int fd, const void* buf, size_t len, int* err) = 0;

  virtual void Close(int fd) = 0;

  // Monotonic clock in milliseconds. Virtual under SimTransport.
  virtual int64_t NowMs() = 0;
};

// The production transport: real sockets, real clock. Stateless and
// thread-safe; every AtrServer without an explicit transport shares the
// process-wide instance from DefaultTransport().
class PosixTransport : public Transport {
 public:
  Status OpenListener(const std::string& host, uint16_t port, int* listen_fd,
                      uint16_t* bound_port) override;
  Status OpenWakePipe(int* read_fd, int* write_fd) override;
  int OpenSpare() override;
  int Poll(pollfd* fds, size_t nfds, int timeout_ms, int* err) override;
  int Accept(int listen_fd, int* err) override;
  ssize_t Read(int fd, void* buf, size_t len, int* err) override;
  ssize_t Write(int fd, const void* buf, size_t len, int* err) override;
  void Close(int fd) override;
  int64_t NowMs() override;
};

// Process-wide PosixTransport singleton.
Transport& DefaultTransport();

}  // namespace net
}  // namespace atr

#endif  // ATR_NET_TRANSPORT_H_
