// AtrServer — the networked front end: one AtrService plus (optionally)
// one PersistentCatalog behind a TCP listener speaking the frame protocol
// of net/wire.h.
//
// Architecture: a single network thread runs a poll() loop over the
// listen socket, a wake pipe, and every client connection. Cheap
// operations (Ping, ListGraphs, Info, Cancel) are answered inline.
// Submit goes through AtrService::TrySubmit — admission control, never
// blocking the network thread: a saturated pending queue answers a
// structured kResourceExhausted error with a retry_after_ms hint scaled
// by the current load. Wait never parks a thread either: the job's
// completion callback (worker thread) pushes the job id through the wake
// pipe, and the network thread mails the response to every registered
// waiter. UpdateGraph/Compact run inline on the network thread; with a
// data_dir configured they route through the PersistentCatalog, so every
// accepted update is fsync'd to the delta log before its response frame
// is queued (write-ahead — a kill -9 right after the response cannot
// lose the update).
//
// Lifecycle:
//
//   AtrServer server(options);            // options.port = 0 → ephemeral
//   server.Start();                       // restores catalog, binds, spawns
//   ... server.port() ...
//   server.Stop();                        // graceful: drain + PersistAll
//
// RequestStop() is async-signal-safe (one write() on the wake pipe), so a
// SIGTERM handler may call it directly; the loop then drains and exits,
// and Stop()/Wait() joins. StopWithoutPersist() is the crash-simulation
// hook for the restart tests: it skips the shutdown compaction sweep, so
// restore must come entirely from base ⊕ delta log.
//
// I/O seam: every syscall the loop makes (poll/accept/read/write/close
// plus the monotonic clock) goes through the Transport interface
// (net/transport.h). Options::transport defaults to the process-wide
// PosixTransport — real sockets, unchanged production behavior. Tests,
// the connection-state-machine fuzzer, and the churn soak install a
// SimTransport (net/sim_transport.h) instead and drive this exact loop
// from scripted byte streams with injected partial reads, short writes,
// errno faults, EMFILE accepts, and virtual time.

#ifndef ATR_NET_SERVER_H_
#define ATR_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "net/transport.h"
#include "net/wire.h"
#include "persist/catalog.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace atr {
namespace net {

class AtrServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; read the bound port with port()
    // Forwarded to AtrService::Options (0 = service defaults).
    int workers = 0;
    size_t queue_capacity = 0;
    // Empty = in-memory only: no snapshots, no delta log, nothing survives
    // a restart. Non-empty = PersistentCatalog root directory.
    std::string data_dir;
    uint64_t compact_threshold = 64;
    // Base of the retry_after_ms hint on admission-control rejections;
    // scaled up with the pending-queue load.
    uint32_t retry_after_base_ms = 50;
    // Finished jobs are kept addressable for Wait this long (count, not
    // time); the oldest finished job is evicted past the cap.
    size_t finished_jobs_cap = 1024;
    // Per-connection output high-water mark. A connection whose unsent
    // response bytes exceed this (a consumer that stopped reading while
    // still issuing requests) is disconnected with a logged reason rather
    // than buffering without bound on the network thread's heap.
    size_t max_output_buffer_bytes = 4u << 20;
    // Connections with no inbound traffic for this long are closed.
    // Connections parked on a Wait (or still flushing output) are never
    // idle-reaped — a long solve is not an idle peer. 0 disables.
    uint32_t idle_timeout_ms = 0;
    // Forwarded to AtrService::Options: catalog shard count and the batch
    // fusion width (0/default = service defaults).
    int shards = 0;
    size_t max_batch = 0;
    // The I/O seam. nullptr = the process-wide PosixTransport (real
    // sockets). Non-owning: the transport must outlive the server.
    Transport* transport = nullptr;
  };

  explicit AtrServer(Options options);
  ~AtrServer();

  AtrServer(const AtrServer&) = delete;
  AtrServer& operator=(const AtrServer&) = delete;

  // Opens the persistent catalog (when configured), restores every stored
  // graph (zero decomposition rebuilds), binds the listener, and spawns
  // the network thread. Call once.
  Status Start();

  // The bound TCP port (valid after Start; useful with Options::port = 0).
  uint16_t port() const { return port_; }

  AtrService& service() { return *service_; }
  // nullptr when no data_dir was configured.
  persist::PersistentCatalog* catalog() { return catalog_.get(); }

  // Registers a new graph; routed through the catalog (base snapshot v1)
  // when persistence is on.
  Status AddGraph(const std::string& name, Graph graph);

  // Async-signal-safe stop request: the network loop wakes, drains its
  // output buffers, closes connections, and exits.
  void RequestStop();

  // Joins the network thread (blocks until the loop exits — either
  // RequestStop/Stop or a client Shutdown request).
  void Join();

  // Graceful shutdown: stop the loop, drain in-flight jobs, compact every
  // graph to a fresh base snapshot (PersistAll).
  Status Stop();

  // Crash simulation for the restart tests: stop the loop and drain jobs
  // but skip the persist-on-stop sweep — restore must replay delta logs.
  Status StopWithoutPersist();

  // Observability counters for the connection-hygiene paths.
  uint64_t slow_consumer_disconnects() const {
    return slow_consumer_disconnects_.load(std::memory_order_relaxed);
  }
  uint64_t idle_disconnects() const {
    return idle_disconnects_.load(std::memory_order_relaxed);
  }
  uint64_t accept_sheds() const {
    return accept_sheds_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct JobRecord;
  struct SubmitToken;

  void Loop();
  void AcceptNewConnections();
  void FlushAndCloseAll();

  // Reads everything available on `conn`; returns false when the
  // connection is gone (EOF / error / protocol violation).
  bool ReadFromConnection(Connection& conn);
  bool WriteToConnection(Connection& conn);
  void DispatchFrame(Connection& conn, const Frame& frame);

  void HandleSubmit(Connection& conn, const SubmitRequest& request)
      ATR_EXCLUDES(jobs_mu_);
  void HandleWait(Connection& conn, const WaitRequest& request)
      ATR_EXCLUDES(jobs_mu_);
  void HandleCancel(Connection& conn, const CancelRequest& request)
      ATR_EXCLUDES(jobs_mu_);
  void HandleUpdateGraph(Connection& conn, const UpdateGraphRequest& request);
  void HandleCompact(Connection& conn, const CompactRequest& request);

  void SendError(Connection& conn, uint64_t request_id, const Status& status,
                 uint32_t retry_after_ms = 0);
  void QueueFrame(Connection& conn, std::vector<uint8_t> frame);

  // Worker-side completion hook: records `job_id` as completed and wakes
  // the network thread.
  void NotifyJobDone(uint64_t job_id) ATR_EXCLUDES(jobs_mu_);
  // Network-thread side: drains the completed list, answers waiters,
  // evicts old finished jobs.
  void ProcessCompletedJobs() ATR_EXCLUDES(jobs_mu_);
  // The response frame for a finished job (WaitResponse or kError). The
  // record lives in jobs_, so the caller holds jobs_mu_ across the call.
  std::vector<uint8_t> FinishedJobFrame(uint64_t request_id, JobRecord& job)
      ATR_REQUIRES(jobs_mu_);

  uint32_t RetryAfterMs(const std::string& tenant) const;

  Options options_;
  Transport* transport_ = nullptr;  // never null after construction
  std::unique_ptr<AtrService> service_;
  std::unique_ptr<persist::PersistentCatalog> catalog_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  // Reserve descriptor for the EMFILE shed path: closed to free a slot,
  // so the pending connection can be accepted, told the server is out of
  // descriptors, and closed — instead of spinning on accept failures
  // while the peer hangs forever on an unanswered SYN backlog entry.
  int spare_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<uint64_t> slow_consumer_disconnects_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
  std::atomic<uint64_t> accept_sheds_{0};

  std::thread loop_thread_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool stopped_ = false;

  // Connections live on the network thread only.
  std::map<int, std::unique_ptr<Connection>> connections_;
  int next_connection_id_ = 1;

  Mutex jobs_mu_;
  std::map<uint64_t, JobRecord> jobs_ ATR_GUARDED_BY(jobs_mu_);
  // Job ids awaiting ProcessCompletedJobs.
  std::vector<uint64_t> completed_ ATR_GUARDED_BY(jobs_mu_);
  // Eviction order for done jobs.
  std::vector<uint64_t> finished_fifo_ ATR_GUARDED_BY(jobs_mu_);
};

}  // namespace net
}  // namespace atr

#endif  // ATR_NET_SERVER_H_
