#include "net/sim_transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <optional>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace atr {
namespace net {
namespace sim_internal {

// One simulated connection, shared between the server side (through fake
// descriptors) and the test side (through SimTransport::Connection
// handles). Every field is guarded by the OWNING Core's mu — a
// cross-object capability the clang analysis cannot express on a
// standalone struct (docs/STATIC_ANALYSIS.md, known limits), so the
// contract lives in this comment and in the fact that every access in
// this file sits inside a MutexLock on Core::mu.
struct ConnState {
  std::deque<uint8_t> to_server;   // client → server, not yet read
  std::vector<uint8_t> to_client;  // server → client, not yet taken
  bool client_closed = false;      // EOF once to_server drains
  bool server_closed = false;
  bool accepted = false;
  int reset_err = 0;       // sticky read error
  int fail_next_read = 0;  // one-shot injected errno
  int fail_next_write = 0;
  size_t max_read_chunk = SIZE_MAX;
  size_t max_write_chunk = SIZE_MAX;
  size_t write_space = SIZE_MAX;  // to_client bytes before EAGAIN
  uint64_t total_written = 0;
};

// The whole simulated network. Connection handles share ownership so
// they stay safe after the SimTransport itself is destroyed.
struct Core {
  enum class Kind { kListener, kPipeRead, kPipeWrite, kSpare, kConn };
  struct Endpoint {
    Kind kind;
    std::shared_ptr<ConnState> conn;  // kConn only
  };

  mutable Mutex mu;
  CondVar cv;

  int64_t now_ms ATR_GUARDED_BY(mu) = 0;
  bool auto_advance ATR_GUARDED_BY(mu) = false;
  int idle_poll_real_ms ATR_GUARDED_BY(mu) = 50;

  std::map<int, Endpoint> fds ATR_GUARDED_BY(mu);
  // Far from any real descriptor, eases debugging.
  int next_fd ATR_GUARDED_BY(mu) = 1000;

  std::deque<std::shared_ptr<ConnState>> backlog ATR_GUARDED_BY(mu);
  std::deque<int> accept_errors ATR_GUARDED_BY(mu);
  size_t pipe_bytes ATR_GUARDED_BY(mu) = 0;
  uint64_t accepts ATR_GUARDED_BY(mu) = 0;
};

}  // namespace sim_internal

using sim_internal::ConnState;
using sim_internal::Core;
using Kind = sim_internal::Core::Kind;

// --- Connection (test side) -----------------------------------------------

SimTransport::Connection::Connection(std::shared_ptr<Core> core,
                                     std::shared_ptr<ConnState> state)
    : core_(std::move(core)), state_(std::move(state)) {}

void SimTransport::Connection::Send(const void* data, size_t len) {
  MutexLock lock(&core_->mu);
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  state_->to_server.insert(state_->to_server.end(), bytes, bytes + len);
  core_->cv.NotifyAll();
}

void SimTransport::Connection::Send(const std::vector<uint8_t>& bytes) {
  Send(bytes.data(), bytes.size());
}

void SimTransport::Connection::Close() {
  MutexLock lock(&core_->mu);
  state_->client_closed = true;
  core_->cv.NotifyAll();
}

void SimTransport::Connection::Reset(int err) {
  MutexLock lock(&core_->mu);
  state_->reset_err = err;
  core_->cv.NotifyAll();
}

std::vector<uint8_t> SimTransport::Connection::TakeOutput() {
  MutexLock lock(&core_->mu);
  std::vector<uint8_t> out = std::move(state_->to_client);
  state_->to_client.clear();
  core_->cv.NotifyAll();  // freed write space unblocks POLLOUT
  return out;
}

bool SimTransport::Connection::WaitForOutput(size_t min_unread,
                                             int timeout_real_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_real_ms);
  MutexLock lock(&core_->mu);
  while (state_->to_client.size() < min_unread && !state_->server_closed) {
    if (!core_->cv.WaitUntil(core_->mu, deadline)) break;
  }
  return state_->to_client.size() >= min_unread;
}

bool SimTransport::Connection::WaitClosedByServer(int timeout_real_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_real_ms);
  MutexLock lock(&core_->mu);
  while (!state_->server_closed) {
    if (!core_->cv.WaitUntil(core_->mu, deadline)) break;
  }
  return state_->server_closed;
}

bool SimTransport::Connection::closed_by_server() const {
  MutexLock lock(&core_->mu);
  return state_->server_closed;
}

bool SimTransport::Connection::accepted_by_server() const {
  MutexLock lock(&core_->mu);
  return state_->accepted;
}

size_t SimTransport::Connection::pending_input() const {
  MutexLock lock(&core_->mu);
  return state_->to_server.size();
}

bool SimTransport::Connection::WaitForInputDrained(int timeout_real_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_real_ms);
  MutexLock lock(&core_->mu);
  while (!state_->to_server.empty() && !state_->server_closed) {
    if (!core_->cv.WaitUntil(core_->mu, deadline)) break;
  }
  return state_->to_server.empty() || state_->server_closed;
}

size_t SimTransport::Connection::pending_output() const {
  MutexLock lock(&core_->mu);
  return state_->to_client.size();
}

uint64_t SimTransport::Connection::total_output_bytes() const {
  MutexLock lock(&core_->mu);
  return state_->total_written;
}

void SimTransport::Connection::set_max_read_chunk(size_t n) {
  MutexLock lock(&core_->mu);
  state_->max_read_chunk = n;
}

void SimTransport::Connection::set_max_write_chunk(size_t n) {
  MutexLock lock(&core_->mu);
  state_->max_write_chunk = n;
}

void SimTransport::Connection::set_write_space(size_t n) {
  MutexLock lock(&core_->mu);
  state_->write_space = n;
  core_->cv.NotifyAll();
}

void SimTransport::Connection::FailNextRead(int err) {
  MutexLock lock(&core_->mu);
  state_->fail_next_read = err;
  core_->cv.NotifyAll();
}

void SimTransport::Connection::FailNextWrite(int err) {
  MutexLock lock(&core_->mu);
  state_->fail_next_write = err;
  core_->cv.NotifyAll();
}

// --- SimTransport (server side) -------------------------------------------

SimTransport::SimTransport() : core_(std::make_shared<Core>()) {}
SimTransport::~SimTransport() = default;

std::shared_ptr<SimTransport::Connection> SimTransport::Connect() {
  auto state = std::make_shared<ConnState>();
  {
    MutexLock lock(&core_->mu);
    core_->backlog.push_back(state);
    core_->cv.NotifyAll();
  }
  return std::shared_ptr<Connection>(
      new Connection(core_, std::move(state)));
}

void SimTransport::AdvanceTimeMs(int64_t delta_ms) {
  MutexLock lock(&core_->mu);
  core_->now_ms += delta_ms;
  core_->cv.NotifyAll();
}

int64_t SimTransport::now_ms() const {
  MutexLock lock(&core_->mu);
  return core_->now_ms;
}

void SimTransport::InjectAcceptError(int err, int times) {
  MutexLock lock(&core_->mu);
  for (int i = 0; i < times; ++i) core_->accept_errors.push_back(err);
  core_->cv.NotifyAll();
}

void SimTransport::set_auto_advance(bool on) {
  MutexLock lock(&core_->mu);
  core_->auto_advance = on;
  core_->cv.NotifyAll();
}

void SimTransport::set_idle_poll_real_ms(int ms) {
  MutexLock lock(&core_->mu);
  core_->idle_poll_real_ms = ms;
}

int SimTransport::open_connection_fds() const {
  MutexLock lock(&core_->mu);
  int n = 0;
  for (const auto& [fd, ep] : core_->fds) {
    if (ep.kind == Kind::kConn) ++n;
  }
  return n;
}

int SimTransport::open_fds() const {
  MutexLock lock(&core_->mu);
  return static_cast<int>(core_->fds.size());
}

uint64_t SimTransport::accepts() const {
  MutexLock lock(&core_->mu);
  return core_->accepts;
}

Status SimTransport::OpenListener(const std::string& host, uint16_t port,
                                  int* listen_fd, uint16_t* bound_port) {
  (void)host;
  MutexLock lock(&core_->mu);
  const int fd = core_->next_fd++;
  core_->fds[fd] = {Kind::kListener, nullptr};
  *listen_fd = fd;
  *bound_port = port != 0 ? port : 1;  // no real port space to draw from
  return Status::Ok();
}

Status SimTransport::OpenWakePipe(int* read_fd, int* write_fd) {
  MutexLock lock(&core_->mu);
  const int rfd = core_->next_fd++;
  const int wfd = core_->next_fd++;
  core_->fds[rfd] = {Kind::kPipeRead, nullptr};
  core_->fds[wfd] = {Kind::kPipeWrite, nullptr};
  *read_fd = rfd;
  *write_fd = wfd;
  return Status::Ok();
}

int SimTransport::OpenSpare() {
  MutexLock lock(&core_->mu);
  const int fd = core_->next_fd++;
  core_->fds[fd] = {Kind::kSpare, nullptr};
  return fd;
}

int SimTransport::Poll(pollfd* fds, size_t nfds, int timeout_ms, int* err) {
  (void)err;
  MutexLock lock(&core_->mu);
  const int64_t deadline =
      timeout_ms < 0 ? std::numeric_limits<int64_t>::max()
                     : core_->now_ms + timeout_ms;
  for (;;) {
    int ready = 0;
    for (size_t i = 0; i < nfds; ++i) {
      fds[i].revents = 0;
      auto it = core_->fds.find(fds[i].fd);
      if (it == core_->fds.end()) {
        fds[i].revents = POLLNVAL;
        ++ready;
        continue;
      }
      short revents = 0;
      switch (it->second.kind) {
        case Kind::kListener:
          // Injected accept errors alone do not make the listener
          // readable: the fault attaches to a real pending connection
          // (kernel EMFILE semantics — the connection is there, the
          // accept of it fails), so a shed path that retries Accept
          // after freeing a descriptor finds the connection waiting.
          if ((fds[i].events & POLLIN) && !core_->backlog.empty()) {
            revents |= POLLIN;
          }
          break;
        case Kind::kPipeRead:
          if ((fds[i].events & POLLIN) && core_->pipe_bytes > 0) {
            revents |= POLLIN;
          }
          break;
        case Kind::kPipeWrite:
        case Kind::kSpare:
          break;
        case Kind::kConn: {
          const ConnState& s = *it->second.conn;
          if ((fds[i].events & POLLIN) &&
              (!s.to_server.empty() || s.client_closed || s.reset_err != 0 ||
               s.fail_next_read != 0)) {
            revents |= POLLIN;
          }
          if ((fds[i].events & POLLOUT) &&
              (s.fail_next_write != 0 ||
               s.to_client.size() < s.write_space)) {
            revents |= POLLOUT;
          }
          break;
        }
      }
      if (revents != 0) {
        fds[i].revents = revents;
        ++ready;
      }
    }
    if (ready > 0) return ready;
    if (timeout_ms == 0 || core_->now_ms >= deadline) return 0;
    // Nothing ready. Block until the test injects an event or advances
    // the virtual clock; after a short real-time window either jump the
    // clock to the deadline (auto-advance: reap/retry paths fire on an
    // idle loop) or return 0 with the clock frozen (deterministic mode:
    // the loop stays responsive, time only moves on AdvanceTimeMs).
    const int64_t window_ms =
        core_->auto_advance ? 2 : core_->idle_poll_real_ms;
    if (!core_->cv.WaitForMs(core_->mu, window_ms)) {
      if (core_->auto_advance) core_->now_ms = deadline;
      return 0;
    }
  }
}

int SimTransport::Accept(int listen_fd, int* err) {
  MutexLock lock(&core_->mu);
  auto it = core_->fds.find(listen_fd);
  if (it == core_->fds.end() || it->second.kind != Kind::kListener) {
    *err = EBADF;
    return -1;
  }
  if (core_->backlog.empty()) {
    // A queued injected error stays queued until a real connection is
    // pending — it models a descriptor-exhaustion fault while accepting
    // that connection, not a phantom readiness event.
    *err = EAGAIN;
    return -1;
  }
  if (!core_->accept_errors.empty()) {
    *err = core_->accept_errors.front();
    core_->accept_errors.pop_front();
    return -1;
  }
  std::shared_ptr<ConnState> conn = core_->backlog.front();
  core_->backlog.pop_front();
  const int fd = core_->next_fd++;
  core_->fds[fd] = {Kind::kConn, conn};
  conn->accepted = true;
  ++core_->accepts;
  core_->cv.NotifyAll();
  return fd;
}

ssize_t SimTransport::Read(int fd, void* buf, size_t len, int* err) {
  MutexLock lock(&core_->mu);
  auto it = core_->fds.find(fd);
  if (it == core_->fds.end()) {
    *err = EBADF;
    return -1;
  }
  switch (it->second.kind) {
    case Kind::kPipeRead: {
      if (core_->pipe_bytes == 0) {
        *err = EAGAIN;
        return -1;
      }
      const size_t n = std::min(len, core_->pipe_bytes);
      std::memset(buf, 1, n);
      core_->pipe_bytes -= n;
      return static_cast<ssize_t>(n);
    }
    case Kind::kConn: {
      ConnState& s = *it->second.conn;
      if (s.fail_next_read != 0) {
        *err = s.fail_next_read;
        s.fail_next_read = 0;
        return -1;
      }
      if (s.reset_err != 0) {
        *err = s.reset_err;
        return -1;
      }
      if (s.to_server.empty()) {
        if (s.client_closed) return 0;  // clean EOF
        *err = EAGAIN;
        return -1;
      }
      const size_t n = std::min({len, s.to_server.size(), s.max_read_chunk});
      if (n == 0) {
        *err = EAGAIN;
        return -1;
      }
      uint8_t* out = static_cast<uint8_t*>(buf);
      std::copy(s.to_server.begin(),
                s.to_server.begin() + static_cast<ptrdiff_t>(n), out);
      s.to_server.erase(s.to_server.begin(),
                        s.to_server.begin() + static_cast<ptrdiff_t>(n));
      core_->cv.NotifyAll();
      return static_cast<ssize_t>(n);
    }
    default:
      *err = EBADF;
      return -1;
  }
}

ssize_t SimTransport::Write(int fd, const void* buf, size_t len, int* err) {
  MutexLock lock(&core_->mu);
  auto it = core_->fds.find(fd);
  if (it == core_->fds.end()) {
    *err = EBADF;
    return -1;
  }
  switch (it->second.kind) {
    case Kind::kPipeWrite:
      core_->pipe_bytes += len;
      core_->cv.NotifyAll();
      return static_cast<ssize_t>(len);
    case Kind::kConn: {
      ConnState& s = *it->second.conn;
      if (s.fail_next_write != 0) {
        *err = s.fail_next_write;
        s.fail_next_write = 0;
        return -1;
      }
      const size_t space =
          s.to_client.size() >= s.write_space
              ? 0
              : s.write_space - s.to_client.size();
      const size_t n = std::min({len, space, s.max_write_chunk});
      if (n == 0) {
        *err = EAGAIN;
        return -1;
      }
      const uint8_t* bytes = static_cast<const uint8_t*>(buf);
      s.to_client.insert(s.to_client.end(), bytes, bytes + n);
      s.total_written += n;
      core_->cv.NotifyAll();
      return static_cast<ssize_t>(n);
    }
    default:
      *err = EBADF;
      return -1;
  }
}

void SimTransport::Close(int fd) {
  MutexLock lock(&core_->mu);
  auto it = core_->fds.find(fd);
  if (it == core_->fds.end()) return;
  if (it->second.kind == Kind::kConn) {
    it->second.conn->server_closed = true;
  }
  core_->fds.erase(it);
  core_->cv.NotifyAll();
}

int64_t SimTransport::NowMs() {
  MutexLock lock(&core_->mu);
  return core_->now_ms;
}

// --- Helpers ---------------------------------------------------------------

bool PumpFrames(SimTransport::Connection& conn, FrameParser& parser,
                size_t want, std::vector<Frame>* frames,
                int timeout_real_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_real_ms);
  for (;;) {
    const std::vector<uint8_t> bytes = conn.TakeOutput();
    if (!bytes.empty()) parser.Feed(bytes.data(), bytes.size());
    while (std::optional<Frame> frame = parser.Next()) {
      frames->push_back(std::move(*frame));
    }
    if (frames->size() >= want) return true;
    if (conn.closed_by_server() && conn.pending_output() == 0) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    conn.WaitForOutput(1, std::max(1, remaining));
  }
}

}  // namespace net
}  // namespace atr
