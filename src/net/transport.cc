#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace atr {
namespace net {

Status PosixTransport::OpenListener(const std::string& host, uint16_t port,
                                    int* listen_fd, uint16_t* bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("AtrServer: socket failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("AtrServer: bad host address " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::Internal("AtrServer: bind to " + host + ":" +
                                      std::to_string(port) +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = Status::Internal(std::string("AtrServer: listen failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s =
        Status::Internal(std::string("AtrServer: getsockname failed: ") +
                         std::strerror(errno));
    ::close(fd);
    return s;
  }
  *listen_fd = fd;
  *bound_port = ntohs(bound.sin_port);
  return Status::Ok();
}

Status PosixTransport::OpenWakePipe(int* read_fd, int* write_fd) {
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::Internal(std::string("AtrServer: pipe2 failed: ") +
                            std::strerror(errno));
  }
  *read_fd = pipe_fds[0];
  *write_fd = pipe_fds[1];
  return Status::Ok();
}

int PosixTransport::OpenSpare() {
  return ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

int PosixTransport::Poll(pollfd* fds, size_t nfds, int timeout_ms, int* err) {
  const int ready = ::poll(fds, nfds, timeout_ms);
  if (ready < 0) *err = errno;
  return ready;
}

int PosixTransport::Accept(int listen_fd, int* err) {
  const int fd =
      ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) *err = errno;
  return fd;
}

ssize_t PosixTransport::Read(int fd, void* buf, size_t len, int* err) {
  ssize_t n = ::recv(fd, buf, len, 0);
  if (n < 0 && errno == ENOTSOCK) n = ::read(fd, buf, len);
  if (n < 0) *err = errno;
  return n;
}

ssize_t PosixTransport::Write(int fd, const void* buf, size_t len, int* err) {
  // MSG_NOSIGNAL keeps a dead peer an EPIPE error, not a SIGPIPE; the
  // ENOTSOCK fallback covers the wake pipe (written from worker threads
  // and from RequestStop, possibly inside a signal handler — both send
  // and write are async-signal-safe).
  ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf, len);
  if (n < 0) *err = errno;
  return n;
}

void PosixTransport::Close(int fd) { ::close(fd); }

int64_t PosixTransport::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Transport& DefaultTransport() {
  static PosixTransport* transport = new PosixTransport();
  return *transport;
}

}  // namespace net
}  // namespace atr
