#include "net/server.h"

#include <cerrno>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace atr {
namespace net {
namespace {

// Best-effort request id for error responses to frames that failed to
// decode: every payload is supposed to lead with it.
uint64_t PeekRequestId(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  uint64_t id = 0;
  reader.ReadU64(&id);
  return id;
}

}  // namespace

// Per-connection state; lives on the network thread only.
struct AtrServer::Connection {
  int id = 0;
  int fd = -1;
  FrameParser parser;
  std::vector<uint8_t> out;  // bytes [out_offset, size) still unsent
  size_t out_offset = 0;
  bool closing = false;     // flush what is queued, then close
  bool overflowed = false;  // output high-water mark exceeded; drop now
  // Wait requests parked on unfinished jobs; a connection with one is
  // waiting on the server, not idling.
  size_t parked_waiters = 0;
  int64_t last_activity_ms = 0;  // Transport::NowMs clock

  bool HasPendingOutput() const { return out_offset < out.size(); }
};

struct AtrServer::JobRecord {
  JobHandle handle;
  bool done = false;
  // Wait requests parked until the job finishes: (connection id,
  // request id) pairs, answered by ProcessCompletedJobs.
  std::vector<std::pair<int, uint64_t>> waiters;
};

// Bridges the submit path and the job-completion callback: the callback
// can fire on a worker thread before TrySubmit has even returned the job
// id to the submitting (network) thread, so both sides rendezvous here.
struct AtrServer::SubmitToken {
  Mutex mu;
  uint64_t job_id ATR_GUARDED_BY(mu) = 0;
  bool fired ATR_GUARDED_BY(mu) = false;
};

AtrServer::AtrServer(Options options)
    : options_(std::move(options)),
      transport_(options_.transport != nullptr ? options_.transport
                                               : &DefaultTransport()) {}

AtrServer::~AtrServer() {
  // Destructor: nowhere to report a persist failure; callers wanting the
  // status call Stop() themselves first.
  if (started_ && !stopped_) (void)Stop();
  if (listen_fd_ >= 0) transport_->Close(listen_fd_);
  if (wake_read_fd_ >= 0) transport_->Close(wake_read_fd_);
  if (wake_write_fd_ >= 0) transport_->Close(wake_write_fd_);
  if (spare_fd_ >= 0) transport_->Close(spare_fd_);
}

Status AtrServer::Start() {
  if (started_) return Status::FailedPrecondition("AtrServer: already started");

  AtrService::Options service_options;
  service_options.workers = options_.workers;
  service_options.queue_capacity = options_.queue_capacity;
  if (options_.shards > 0) service_options.shards = options_.shards;
  if (options_.max_batch > 0) service_options.max_batch = options_.max_batch;
  service_ = std::make_unique<AtrService>(service_options);

  if (!options_.data_dir.empty()) {
    persist::PersistentCatalog::Options catalog_options;
    catalog_options.root_dir = options_.data_dir;
    catalog_options.compact_threshold = options_.compact_threshold;
    catalog_ =
        std::make_unique<persist::PersistentCatalog>(*service_, catalog_options);
    if (Status s = catalog_->Open(); !s.ok()) return s;
  }

  if (Status s = transport_->OpenListener(options_.host, options_.port,
                                          &listen_fd_, &port_);
      !s.ok()) {
    return s;
  }
  if (Status s = transport_->OpenWakePipe(&wake_read_fd_, &wake_write_fd_);
      !s.ok()) {
    return s;
  }
  spare_fd_ = transport_->OpenSpare();

  started_ = true;
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

Status AtrServer::AddGraph(const std::string& name, Graph graph) {
  if (service_ == nullptr) {
    return Status::FailedPrecondition("AtrServer: Start before AddGraph");
  }
  if (catalog_ != nullptr) return catalog_->AddGraph(name, std::move(graph));
  return service_->AddGraph(name, std::move(graph));
}

void AtrServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const uint8_t byte = 1;
    int err = 0;
    [[maybe_unused]] ssize_t n =
        transport_->Write(wake_write_fd_, &byte, 1, &err);
  }
}

void AtrServer::Join() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

Status AtrServer::Stop() {
  if (!started_ || stopped_) return Status::Ok();
  RequestStop();
  Join();
  service_->Drain();
  stopped_ = true;
  if (catalog_ != nullptr) return catalog_->PersistAll();
  return Status::Ok();
}

Status AtrServer::StopWithoutPersist() {
  if (!started_ || stopped_) return Status::Ok();
  RequestStop();
  Join();
  service_->Drain();
  stopped_ = true;  // no PersistAll: restore must come from base ⊕ log
  return Status::Ok();
}

// --- Network loop ---------------------------------------------------------

void AtrServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<int> polled_ids;  // connection id behind fds[2 + i]
  const int tick_ms =
      options_.idle_timeout_ms > 0
          ? std::min(500, static_cast<int>(options_.idle_timeout_ms))
          : 500;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    polled_ids.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (conn->HasPendingOutput()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      polled_ids.push_back(id);
    }

    int poll_err = 0;
    const int ready =
        transport_->Poll(fds.data(), fds.size(), tick_ms, &poll_err);
    if (ready < 0) {
      if (poll_err == EINTR) continue;
      break;  // poll broken beyond repair; shut the loop down
    }

    if (fds[1].revents & POLLIN) {
      uint8_t drain[256];
      int err = 0;
      while (transport_->Read(wake_read_fd_, drain, sizeof(drain), &err) > 0) {
      }
    }
    ProcessCompletedJobs();
    if (stop_requested_.load(std::memory_order_acquire)) break;

    if (fds[0].revents & POLLIN) AcceptNewConnections();

    // Connections accepted above were not in this poll round; only the
    // ids snapshotted into polled_ids have meaningful revents.
    const int64_t now = transport_->NowMs();
    std::vector<int> dead;
    for (size_t i = 0; i < polled_ids.size(); ++i) {
      auto it = connections_.find(polled_ids[i]);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      const pollfd& pfd = fds[2 + i];
      bool alive = true;
      if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (pfd.revents & (POLLIN | POLLHUP))) {
        alive = ReadFromConnection(conn);
      }
      if (alive && (pfd.revents & POLLOUT)) alive = WriteToConnection(conn);
      if (alive && conn.overflowed) {
        std::fprintf(stderr,
                     "atr-server: disconnecting slow consumer (connection %d): "
                     "%zu unsent bytes exceed the %zu-byte high-water mark\n",
                     conn.id, conn.out.size() - conn.out_offset,
                     options_.max_output_buffer_bytes);
        slow_consumer_disconnects_.fetch_add(1, std::memory_order_relaxed);
        alive = false;
      }
      if (alive && options_.idle_timeout_ms > 0 && conn.parked_waiters == 0 &&
          !conn.HasPendingOutput() &&
          now - conn.last_activity_ms >=
              static_cast<int64_t>(options_.idle_timeout_ms)) {
        idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
        alive = false;
      }
      if (alive && conn.closing && !conn.HasPendingOutput()) alive = false;
      if (!alive) dead.push_back(polled_ids[i]);
    }
    for (const int id : dead) {
      transport_->Close(connections_[id]->fd);
      connections_.erase(id);
    }
  }

  FlushAndCloseAll();
}

void AtrServer::AcceptNewConnections() {
  for (;;) {
    int err = 0;
    const int fd = transport_->Accept(listen_fd_, &err);
    if (fd >= 0) {
      auto conn = std::make_unique<Connection>();
      conn->id = next_connection_id_++;
      conn->fd = fd;
      conn->last_activity_ms = transport_->NowMs();
      connections_[conn->id] = std::move(conn);
      continue;
    }
    if (err == EAGAIN || err == EWOULDBLOCK) return;
    if (err == EINTR) continue;
    // The peer gave up between SYN and accept; not our problem.
    if (err == ECONNABORTED || err == EPROTO) continue;
    if (err == EMFILE || err == ENFILE) {
      // Out of descriptors. Leaving the connection in the backlog would
      // make the peer block forever AND re-trigger POLLIN on the listener
      // every loop tick. Free the reserve descriptor, accept the pending
      // connection into the freed slot, answer it with a structured
      // kResourceExhausted error, and close it.
      if (spare_fd_ >= 0) {
        transport_->Close(spare_fd_);
        spare_fd_ = -1;
      }
      int shed_err = 0;
      const int shed = transport_->Accept(listen_fd_, &shed_err);
      if (shed >= 0) {
        ErrorResponse error;
        error.request_id = 0;  // connection-level: no request in flight yet
        error.code = StatusCode::kResourceExhausted;
        error.message = "server is out of file descriptors";
        error.retry_after_ms = RetryAfterMs("");
        const std::vector<uint8_t> frame = error.EncodeFrame();
        int send_err = 0;
        [[maybe_unused]] ssize_t n =
            transport_->Write(shed, frame.data(), frame.size(), &send_err);
        transport_->Close(shed);
      }
      spare_fd_ = transport_->OpenSpare();
      accept_sheds_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "atr-server: out of file descriptors; shed one pending "
                   "connection with kResourceExhausted\n");
      return;
    }
    return;  // unexpected accept failure; retry on the next POLLIN
  }
}

// Drain phase: give queued responses (e.g. the ShutdownResponse that
// triggered this exit) a bounded chance to flush, then close everything.
// Waits on the sockets themselves rather than sleeping blind, and drops
// peers that error out instead of retrying them for the full budget.
void AtrServer::FlushAndCloseAll() {
  const int64_t deadline_ms = transport_->NowMs() + 1000;
  std::vector<pollfd> fds;
  std::vector<int> polled_ids;
  // The round cap is a second bound alongside the deadline: under a
  // SimTransport whose virtual clock is frozen, a peer with no write
  // space would otherwise pin this drain loop forever. With the real
  // clock the 1 s deadline always fires first (each round polls ≤ 50 ms).
  for (int round = 0; round < 200; ++round) {
    fds.clear();
    polled_ids.clear();
    for (auto& [id, conn] : connections_) {
      if (conn->HasPendingOutput()) {
        fds.push_back({conn->fd, POLLOUT, 0});
        polled_ids.push_back(id);
      }
    }
    if (fds.empty()) break;
    const int64_t now_ms = transport_->NowMs();
    if (now_ms >= deadline_ms) break;
    const int wait_ms = static_cast<int>(deadline_ms - now_ms);
    int poll_err = 0;
    const int ready = transport_->Poll(fds.data(), fds.size(),
                                       std::min(wait_ms, 50), &poll_err);
    if (ready < 0 && poll_err != EINTR) break;
    for (size_t i = 0; i < polled_ids.size(); ++i) {
      auto it = connections_.find(polled_ids[i]);
      if (it == connections_.end()) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        transport_->Close(it->second->fd);
        connections_.erase(it);
        continue;
      }
      if ((fds[i].revents & POLLOUT) && !WriteToConnection(*it->second)) {
        transport_->Close(it->second->fd);
        connections_.erase(it);
      }
    }
  }
  for (auto& [id, conn] : connections_) transport_->Close(conn->fd);
  connections_.clear();
}

bool AtrServer::ReadFromConnection(Connection& conn) {
  uint8_t chunk[1 << 16];
  bool peer_eof = false;
  for (;;) {
    int err = 0;
    const ssize_t n = transport_->Read(conn.fd, chunk, sizeof(chunk), &err);
    if (n > 0) {
      conn.last_activity_ms = transport_->NowMs();
      conn.parser.Feed(chunk, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (err == EAGAIN || err == EWOULDBLOCK) break;
    if (err == EINTR) continue;
    return false;
  }
  while (std::optional<Frame> frame = conn.parser.Next()) {
    DispatchFrame(conn, *frame);
  }
  // A poisoned parser (oversize frame) means the stream is garbage;
  // protocol violations cost the connection.
  if (!conn.parser.ok()) return false;
  if (peer_eof) {
    // The peer half-closed after (possibly) pipelining requests. Those
    // frames were dispatched above and their responses belong to the
    // peer's still-open read side: mark the connection closing so the
    // loop flushes the queued output and only then closes. Returning
    // false here used to drop every pipelined response on the floor.
    conn.closing = true;
    if (!conn.HasPendingOutput()) return false;
  }
  return true;
}

bool AtrServer::WriteToConnection(Connection& conn) {
  while (conn.HasPendingOutput()) {
    int err = 0;
    const ssize_t n =
        transport_->Write(conn.fd, conn.out.data() + conn.out_offset,
                          conn.out.size() - conn.out_offset, &err);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (err == EAGAIN || err == EWOULDBLOCK)) return true;
    if (n < 0 && err == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_offset = 0;
  return true;
}

void AtrServer::QueueFrame(Connection& conn, std::vector<uint8_t> frame) {
  if (conn.out_offset == conn.out.size()) {
    conn.out = std::move(frame);
    conn.out_offset = 0;
  } else {
    conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  }
  // A peer that keeps issuing requests without reading responses would
  // otherwise grow this buffer without bound; past the high-water mark the
  // connection is condemned (the network loop closes it this round).
  if (conn.out.size() - conn.out_offset > options_.max_output_buffer_bytes) {
    conn.overflowed = true;
  }
}

void AtrServer::SendError(Connection& conn, uint64_t request_id,
                          const Status& status, uint32_t retry_after_ms) {
  ErrorResponse error;
  error.request_id = request_id;
  error.code = status.code();
  error.message = status.message();
  error.retry_after_ms = retry_after_ms;
  QueueFrame(conn, error.EncodeFrame());
}

uint32_t AtrServer::RetryAfterMs(const std::string& tenant) const {
  // Scale the base hint by how deep the pending queue is relative to the
  // worker pool: a barely-full queue suggests a short wait, a queue many
  // jobs deep per worker suggests a longer one. A named tenant's hint
  // scales with its OWN backlog — under fair-share dispatch a light
  // tenant behind a heavy one is served after at most one DRR cycle, so
  // the global queue depth would wildly overstate its wait.
  const size_t load = tenant.empty() ? service_->QueueLoad()
                                     : service_->TenantLoad(tenant);
  const size_t workers = std::max(1, service_->Workers());
  const uint64_t scaled =
      uint64_t(options_.retry_after_base_ms) * (1 + load / workers);
  return static_cast<uint32_t>(std::min<uint64_t>(scaled, 10'000));
}

void AtrServer::DispatchFrame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPing: {
      StatusOr<PingRequest> request = PingRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      PingResponse response;
      response.request_id = request->request_id;
      QueueFrame(conn, response.EncodeFrame());
      return;
    }
    case MsgType::kListGraphs: {
      StatusOr<ListGraphsRequest> request =
          ListGraphsRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      ListGraphsResponse response;
      response.request_id = request->request_id;
      response.names = service_->GraphNames();
      QueueFrame(conn, response.EncodeFrame());
      return;
    }
    case MsgType::kInfo: {
      StatusOr<InfoRequest> request = InfoRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      StatusOr<AtrService::GraphInfo> info = service_->Info(request->graph);
      if (!info.ok()) {
        SendError(conn, request->request_id, info.status());
        return;
      }
      InfoResponse response;
      response.request_id = request->request_id;
      response.info = *std::move(info);
      QueueFrame(conn, response.EncodeFrame());
      return;
    }
    case MsgType::kSubmit: {
      StatusOr<SubmitRequest> request = SubmitRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      HandleSubmit(conn, *request);
      return;
    }
    case MsgType::kWait: {
      StatusOr<WaitRequest> request = WaitRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      HandleWait(conn, *request);
      return;
    }
    case MsgType::kCancel: {
      StatusOr<CancelRequest> request = CancelRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      HandleCancel(conn, *request);
      return;
    }
    case MsgType::kUpdateGraph: {
      StatusOr<UpdateGraphRequest> request =
          UpdateGraphRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      HandleUpdateGraph(conn, *request);
      return;
    }
    case MsgType::kCompact: {
      StatusOr<CompactRequest> request = CompactRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      HandleCompact(conn, *request);
      return;
    }
    case MsgType::kShutdown: {
      StatusOr<ShutdownRequest> request =
          ShutdownRequest::Decode(frame.payload);
      if (!request.ok()) {
        SendError(conn, PeekRequestId(frame.payload), request.status());
        return;
      }
      ShutdownResponse response;
      response.request_id = request->request_id;
      QueueFrame(conn, response.EncodeFrame());
      conn.closing = true;
      stop_requested_.store(true, std::memory_order_release);
      return;
    }
    default:
      SendError(conn, PeekRequestId(frame.payload),
                Status::InvalidArgument(
                    std::string("unexpected frame type ") +
                    MsgTypeName(frame.type) + " on the server side"));
      return;
  }
}

void AtrServer::HandleSubmit(Connection& conn, const SubmitRequest& request) {
  auto token = std::make_shared<SubmitToken>();
  auto done = [this, token] {
    uint64_t id = 0;
    {
      MutexLock lock(&token->mu);
      if (token->job_id == 0) {
        // Fired before the submitting thread learned the job id; it will
        // deliver the notification itself.
        token->fired = true;
        return;
      }
      id = token->job_id;
    }
    NotifyJobDone(id);
  };

  AtrService::SubmitOptions submit_options;
  submit_options.tenant = request.tenant;
  submit_options.priority = request.priority;
  submit_options.plan = request.plan;
  StatusOr<JobHandle> handle =
      service_->TrySubmit(request.graph, request.solver,
                          request.options.ToSolverOptions(), submit_options,
                          done);
  if (!handle.ok()) {
    const bool saturated =
        handle.status().code() == StatusCode::kResourceExhausted;
    SendError(conn, request.request_id, handle.status(),
              saturated ? RetryAfterMs(request.tenant) : 0);
    return;
  }

  const uint64_t job_id = handle->id();
  {
    MutexLock lock(&jobs_mu_);
    jobs_[job_id].handle = *handle;
  }
  bool already_fired = false;
  {
    MutexLock lock(&token->mu);
    token->job_id = job_id;
    already_fired = token->fired;
  }
  if (already_fired) NotifyJobDone(job_id);

  SubmitResponse response;
  response.request_id = request.request_id;
  response.job_id = job_id;
  QueueFrame(conn, response.EncodeFrame());
}

std::vector<uint8_t> AtrServer::FinishedJobFrame(uint64_t request_id,
                                                 JobRecord& job) {
  std::optional<StatusOr<SolveResult>> result = job.handle.TryGet();
  if (!result.has_value()) {
    ErrorResponse error;
    error.request_id = request_id;
    error.code = StatusCode::kInternal;
    error.message = "job marked done but its result is not available";
    return error.EncodeFrame();
  }
  if (!result->ok()) {
    ErrorResponse error;
    error.request_id = request_id;
    error.code = result->status().code();
    error.message = result->status().message();
    return error.EncodeFrame();
  }
  WaitResponse response;
  response.request_id = request_id;
  response.job_id = job.handle.id();
  response.result = WireSolveResult::FromSolveResult(**result);
  return response.EncodeFrame();
}

void AtrServer::HandleWait(Connection& conn, const WaitRequest& request) {
  std::vector<uint8_t> frame;
  {
    MutexLock lock(&jobs_mu_);
    auto it = jobs_.find(request.job_id);
    if (it == jobs_.end()) {
      SendError(conn, request.request_id,
                Status::NotFound("unknown job id " +
                                 std::to_string(request.job_id)));
      return;
    }
    if (!it->second.done) {
      it->second.waiters.emplace_back(conn.id, request.request_id);
      ++conn.parked_waiters;  // waiting on us — exempt from idle reaping
      return;  // answered by ProcessCompletedJobs when the job finishes
    }
    frame = FinishedJobFrame(request.request_id, it->second);
  }
  QueueFrame(conn, std::move(frame));
}

void AtrServer::HandleCancel(Connection& conn, const CancelRequest& request) {
  JobHandle handle;
  {
    MutexLock lock(&jobs_mu_);
    auto it = jobs_.find(request.job_id);
    if (it == jobs_.end()) {
      SendError(conn, request.request_id,
                Status::NotFound("unknown job id " +
                                 std::to_string(request.job_id)));
      return;
    }
    handle = it->second.handle;
  }
  CancelResponse response;
  response.request_id = request.request_id;
  response.cancelled = handle.Cancel();
  QueueFrame(conn, response.EncodeFrame());
}

void AtrServer::HandleUpdateGraph(Connection& conn,
                                  const UpdateGraphRequest& request) {
  StatusOr<GraphSnapshot> snapshot =
      catalog_ != nullptr ? catalog_->UpdateGraph(request.graph, request.delta)
                          : service_->UpdateGraph(request.graph, request.delta);
  if (!snapshot.ok()) {
    SendError(conn, request.request_id, snapshot.status());
    return;
  }
  UpdateGraphResponse response;
  response.request_id = request.request_id;
  response.version = snapshot->version;
  response.num_vertices = snapshot->graph->NumVertices();
  response.num_edges = snapshot->graph->NumEdges();
  QueueFrame(conn, response.EncodeFrame());
}

void AtrServer::HandleCompact(Connection& conn,
                              const CompactRequest& request) {
  if (catalog_ == nullptr) {
    SendError(conn, request.request_id,
              Status::FailedPrecondition(
                  "server is running without persistence (no data_dir)"));
    return;
  }
  if (Status s = catalog_->Compact(request.graph); !s.ok()) {
    SendError(conn, request.request_id, s);
    return;
  }
  CompactResponse response;
  response.request_id = request.request_id;
  QueueFrame(conn, response.EncodeFrame());
}

void AtrServer::NotifyJobDone(uint64_t job_id) {
  {
    MutexLock lock(&jobs_mu_);
    completed_.push_back(job_id);
  }
  if (wake_write_fd_ >= 0) {
    const uint8_t byte = 1;
    int err = 0;
    [[maybe_unused]] ssize_t n =
        transport_->Write(wake_write_fd_, &byte, 1, &err);
  }
}

void AtrServer::ProcessCompletedJobs() {
  // (connection id, encoded frame) pairs built under the lock, queued
  // after it — connections_ belongs to this (network) thread anyway.
  std::vector<std::pair<int, std::vector<uint8_t>>> deliveries;
  {
    MutexLock lock(&jobs_mu_);
    std::vector<uint64_t> completed = std::move(completed_);
    completed_.clear();
    for (const uint64_t job_id : completed) {
      auto it = jobs_.find(job_id);
      if (it == jobs_.end()) continue;
      it->second.done = true;
      for (const auto& [conn_id, request_id] : it->second.waiters) {
        deliveries.emplace_back(conn_id,
                                FinishedJobFrame(request_id, it->second));
      }
      it->second.waiters.clear();
      finished_fifo_.push_back(job_id);
    }
    while (finished_fifo_.size() > options_.finished_jobs_cap) {
      jobs_.erase(finished_fifo_.front());
      finished_fifo_.erase(finished_fifo_.begin());
    }
  }
  for (auto& [conn_id, frame] : deliveries) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // waiter hung up; drop it
    if (it->second->parked_waiters > 0) --it->second->parked_waiters;
    it->second->last_activity_ms = transport_->NowMs();
    QueueFrame(*it->second, std::move(frame));
  }
}

}  // namespace net
}  // namespace atr
