// AtrClient — blocking C++ client for the AtrServer wire protocol
// (net/wire.h). Used by the integration tests and the atr_client CLI.
//
//   AtrClient client;
//   client.Connect("127.0.0.1", port);
//   StatusOr<uint64_t> job = client.Submit("social", "gas", options);
//   StatusOr<WireSolveResult> result = client.Wait(*job);
//
// The typed methods are synchronous round trips, but the connection
// itself is pipelined: every request carries a fresh request id, and
// responses arriving for OTHER ids while one call blocks are stashed and
// handed out when their call asks. The lower-level Send*/Receive split
// (SendSubmit + ReceiveSubmit, ...) exposes that directly — fire many
// requests, then collect the responses in any order.
//
// Server-side errors come back as the error frame's embedded Status
// (code + message). For kResourceExhausted rejections the server's
// retry_after_ms hint is retained and readable via last_retry_after_ms()
// until the next request.

#ifndef ATR_NET_CLIENT_H_
#define ATR_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "net/wire.h"
#include "util/status.h"

namespace atr {
namespace net {

struct AtrClientOptions {
  // Per-I/O deadline, applied to the socket as SO_RCVTIMEO + SO_SNDTIMEO
  // at Connect. A send or recv that makes no progress for this long fails
  // the call with kDeadlineExceeded — the request may still execute
  // server-side (the deadline bounds the wait, not the work). 0 = block
  // forever (the pre-deadline behavior).
  uint32_t io_timeout_ms = 0;
};

class AtrClient {
 public:
  AtrClient() = default;
  explicit AtrClient(AtrClientOptions options) : options_(options) {}
  ~AtrClient() { Close(); }

  AtrClient(const AtrClient&) = delete;
  AtrClient& operator=(const AtrClient&) = delete;

  // Movable: the moved-from client is disconnected.
  AtrClient(AtrClient&& other) noexcept { *this = std::move(other); }
  AtrClient& operator=(AtrClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      options_ = other.options_;
      next_request_id_ = other.next_request_id_;
      parser_ = std::move(other.parser_);
      stash_ = std::move(other.stash_);
      last_retry_after_ms_ = other.last_retry_after_ms_;
    }
    return *this;
  }

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- Synchronous round trips -------------------------------------------

  Status Ping();
  StatusOr<std::vector<std::string>> ListGraphs();
  StatusOr<AtrService::GraphInfo> Info(const std::string& graph);
  // Enqueues a solve; the returned job id feeds Wait / Cancel. `tenant`
  // names the fair-share queue the job lands in ("" = the default
  // tenant); higher `priority` runs first within the tenant. `plan`
  // selects the server-side decomposition kernel (truss/plan.h); nullopt
  // keeps the server default.
  StatusOr<uint64_t> Submit(
      const std::string& graph, const std::string& solver,
      const WireSolverOptions& options, const std::string& tenant = "",
      int priority = 0,
      const std::optional<DecompositionPlan>& plan = std::nullopt);
  // Blocks until the job finishes server-side and returns its result.
  StatusOr<WireSolveResult> Wait(uint64_t job_id);
  // true = the job was cancelled before running; false = too late.
  StatusOr<bool> Cancel(uint64_t job_id);
  StatusOr<UpdateGraphResponse> UpdateGraph(const std::string& graph,
                                            const GraphDelta& delta);
  Status Compact(const std::string& graph);
  // Asks the server process to shut down (it still answers).
  Status Shutdown();

  // --- Pipelined form -----------------------------------------------------
  //
  // Send* writes the request and returns its request id without waiting;
  // Receive* blocks until THAT id's response arrives (stashing others).

  StatusOr<uint64_t> SendSubmit(
      const std::string& graph, const std::string& solver,
      const WireSolverOptions& options, const std::string& tenant = "",
      int priority = 0,
      const std::optional<DecompositionPlan>& plan = std::nullopt);
  StatusOr<uint64_t> ReceiveSubmit(uint64_t request_id);
  StatusOr<uint64_t> SendWait(uint64_t job_id);
  StatusOr<WireSolveResult> ReceiveWait(uint64_t request_id);

  // retry_after_ms of the most recent error response (0 when the last
  // error carried no hint or the last call succeeded).
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  uint64_t NextRequestId() { return next_request_id_++; }
  Status SendBytes(const std::vector<uint8_t>& bytes);
  // Blocks until the response frame for `request_id` arrives. An error
  // frame for that id is converted to its embedded Status (and the
  // retry-after hint captured); a response whose type differs from
  // `expected` is a protocol error.
  StatusOr<Frame> ReceiveFor(uint64_t request_id, MsgType expected);

  int fd_ = -1;
  AtrClientOptions options_;
  uint64_t next_request_id_ = 1;
  FrameParser parser_;
  std::map<uint64_t, Frame> stash_;  // responses for ids nobody asked for yet
  uint32_t last_retry_after_ms_ = 0;
};

}  // namespace net
}  // namespace atr

#endif  // ATR_NET_CLIENT_H_
