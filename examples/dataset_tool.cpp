// Dataset inspection tool: loads a SNAP-format edge list (or generates a
// named stand-in) and prints the statistics columns of the paper's Table
// III plus the k-hull profile. Runs the original paper datasets unchanged
// when the SNAP files are available.
//
//   ./examples/dataset_tool <path-to-snap-edge-list>
//   ./examples/dataset_tool --profile <college|facebook|...> [scale]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/edge_list_io.h"
#include "graph/generators/social_profiles.h"
#include "graph/triangles.h"
#include "truss/decomposition.h"

namespace {

void Describe(const atr::Graph& g, const std::string& name) {
  const atr::TrussDecomposition decomp = atr::ComputeTrussDecomposition(g);
  uint32_t sup_max = 0;
  for (uint32_t s : atr::ComputeSupport(g)) sup_max = std::max(sup_max, s);

  std::printf("dataset   : %s\n", name.c_str());
  std::printf("vertices  : %u\n", g.NumVertices());
  std::printf("edges     : %u\n", g.NumEdges());
  std::printf("triangles : %llu\n",
              static_cast<unsigned long long>(atr::CountTriangles(g)));
  std::printf("k_max     : %u\n", decomp.max_trussness);
  std::printf("sup_max   : %u\n", sup_max);
  std::printf("k-hull profile (|H_k|):\n");
  const std::vector<uint32_t> hulls = atr::HullSizes(decomp);
  for (uint32_t k = 2; k < hulls.size(); ++k) {
    if (hulls[k] > 0) std::printf("  k=%-3u %u edges\n", k, hulls[k]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--profile") == 0) {
    const double scale = argc >= 4 ? std::atof(argv[3]) : 0.25;
    const atr::Graph g = atr::MakeSocialProfile(argv[2], scale, /*seed=*/0);
    Describe(g, std::string(argv[2]) + " (synthetic stand-in)");
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <snap-edge-list>\n"
                 "       %s --profile <name> [scale]\n",
                 argv[0], argv[0]);
    return 2;
  }
  atr::StatusOr<atr::Graph> g = atr::LoadSnapEdgeList(argv[1]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().message().c_str());
    return 1;
  }
  Describe(*g, argv[1]);
  return 0;
}
