// Quickstart: build a small social graph, decompose it, and anchor the b
// most valuable edges with GAS.
//
//   ./examples/quickstart [budget]

#include <cstdio>
#include <cstdlib>

#include "core/gas.h"
#include "graph/generators/generators.h"
#include "truss/decomposition.h"

int main(int argc, char** argv) {
  const uint32_t budget = argc > 1 ? std::atoi(argv[1]) : 5;

  // A clustered social network: 2000 users, power-law friendships with
  // strong triadic closure.
  const atr::Graph g = atr::HolmeKimGraph(2000, 6, 0.8, /*seed=*/7);
  std::printf("graph: %u vertices, %u edges\n", g.NumVertices(), g.NumEdges());

  const atr::TrussDecomposition decomp = atr::ComputeTrussDecomposition(g);
  std::printf("max trussness: %u\n", decomp.max_trussness);

  const atr::AnchorResult result = atr::RunGas(g, budget);
  std::printf("\nGAS selected %zu anchor edges (total trussness gain %llu):\n",
              result.anchors.size(),
              static_cast<unsigned long long>(result.total_gain));
  for (size_t i = 0; i < result.rounds.size(); ++i) {
    const atr::AnchorRound& round = result.rounds[i];
    const atr::EdgeEndpoints ends = g.Edge(round.anchor);
    std::printf("  round %zu: anchor (%u, %u)  gain +%u  [%.3fs]\n", i + 1,
                ends.u, ends.v, round.gain, round.cumulative_seconds);
  }
  return 0;
}
