// Quickstart: build a small social graph, open an AtrEngine session on it,
// and anchor the b most valuable edges with GAS through the unified solver
// API — with a progress callback streaming per-round updates.
//
//   ./examples/quickstart [budget]

#include <cstdio>
#include <cstdlib>

#include "api/engine.h"
#include "api/registry.h"
#include "graph/generators/generators.h"

int main(int argc, char** argv) {
  const uint32_t budget = argc > 1 ? std::atoi(argv[1]) : 5;

  // A clustered social network: 2000 users, power-law friendships with
  // strong triadic closure.
  atr::Graph g = atr::HolmeKimGraph(2000, 6, 0.8, /*seed=*/7);
  std::printf("graph: %u vertices, %u edges\n", g.NumVertices(), g.NumEdges());

  // The engine owns the graph and caches its truss decomposition; every
  // registered solver ("base", "base+", "gas", "exact", "rand", "sup",
  // "tur", "akt:<k>") runs against that shared state.
  atr::AtrEngine engine(std::move(g));
  std::printf("max trussness: %u\n", engine.MaxTrussness());

  atr::SolverOptions options;
  options.budget = budget;
  options.progress = [](const atr::SolveProgress& progress) {
    std::fprintf(stderr, "  [%s] round %u/%u  total gain %llu  (%.3fs)\n",
                 progress.solver.c_str(), progress.round, progress.budget,
                 static_cast<unsigned long long>(progress.total_gain),
                 progress.elapsed_seconds);
    return true;  // returning false would cancel the run
  };

  const atr::StatusOr<atr::SolveResult> result = engine.Run("gas", options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().message().c_str());
    return 1;
  }

  std::printf("\nGAS selected %zu anchor edges (total trussness gain %llu):\n",
              result->anchor_edges.size(),
              static_cast<unsigned long long>(result->total_gain));
  for (size_t i = 0; i < result->rounds.size(); ++i) {
    const atr::AnchorRound& round = result->rounds[i];
    const atr::EdgeEndpoints ends = engine.graph().Edge(round.anchor);
    std::printf("  round %zu: anchor (%u, %u)  gain +%u  [%.3fs]\n", i + 1,
                ends.u, ends.v, round.gain, round.cumulative_seconds);
  }
  return 0;
}
