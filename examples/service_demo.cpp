// AtrService demo: a catalog of two generated graphs served concurrently.
//
// Submits a mixed batch of solver jobs against both graphs, streams their
// progress events from the worker threads, cancels one long-running job
// mid-flight, publishes a streaming UpdateGraph delta (a new snapshot
// version seeded from the old one — no second decomposition build), and
// prints the per-graph service stats.
//
//   ./examples/service_demo [budget]

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "api/service.h"
#include "graph/generators/generators.h"

int main(int argc, char** argv) {
  const uint32_t budget = argc > 1 ? std::atoi(argv[1]) : 8;

  atr::AtrService::Options service_options;
  service_options.workers = 4;
  atr::AtrService service(service_options);

  // Two workloads: a clustered friendship network and a small-world mesh.
  const atr::Status social = service.AddGraph(
      "social", atr::HolmeKimGraph(1200, 5, 0.8, /*seed=*/7));
  const atr::Status mesh = service.AddGraph(
      "mesh", atr::WattsStrogatzGraph(800, 8, 0.1, /*seed=*/9));
  if (!social.ok() || !mesh.ok()) {
    std::fprintf(stderr, "AddGraph failed: %s\n",
                 (!social.ok() ? social : mesh).message().c_str());
    return 1;
  }
  for (const std::string& name : service.GraphNames()) {
    const atr::AtrService::GraphInfo info = service.Info(name).value();
    std::printf("graph %-6s  |V|=%u |E|=%u\n", info.name.c_str(),
                info.num_vertices, info.num_edges);
  }

  // Progress events arrive on pool worker threads; serialize the printing.
  static std::mutex print_mu;
  auto streaming = [](const std::string& graph) {
    return [graph](const atr::SolveProgress& progress) {
      std::lock_guard<std::mutex> lock(print_mu);
      std::fprintf(stderr, "  [%s/%s] round %u/%u  gain %llu  (%.3fs)\n",
                   graph.c_str(), progress.solver.c_str(), progress.round,
                   progress.budget,
                   static_cast<unsigned long long>(progress.total_gain),
                   progress.elapsed_seconds);
      return true;
    };
  };

  // A mixed batch: the greedy flagship plus baselines, on both graphs.
  std::vector<atr::JobHandle> jobs;
  for (const char* graph : {"social", "mesh"}) {
    for (const char* solver : {"gas", "tur", "akt:5"}) {
      atr::SolverOptions options;
      options.budget = budget;
      options.trials = 50;
      options.progress = streaming(graph);
      atr::StatusOr<atr::JobHandle> job =
          service.Submit(graph, solver, options);
      if (!job.ok()) {
        std::fprintf(stderr, "submit %s/%s failed: %s\n", graph, solver,
                     job.status().message().c_str());
        return 1;
      }
      jobs.push_back(*job);
    }
  }

  // One more job than we intend to finish: cancel it mid-flight. The
  // cancelled job still returns a valid greedy prefix (stopped_early set).
  atr::SolverOptions doomed_options;
  doomed_options.budget = budget * 4;
  doomed_options.progress = streaming("social");
  atr::JobHandle doomed =
      service.Submit("social", "base+", doomed_options).value();
  doomed.Cancel();

  for (atr::JobHandle& job : jobs) {
    atr::StatusOr<atr::SolveResult> result = job.Wait();
    if (!result.ok()) {
      std::fprintf(stderr, "%s/%s failed: %s\n", job.graph_name().c_str(),
                   job.solver_name().c_str(),
                   result.status().message().c_str());
      return 1;
    }
    std::printf("%-6s %-6s  gain %-6llu  %zu anchors  %.3fs\n",
                job.graph_name().c_str(), job.solver_name().c_str(),
                static_cast<unsigned long long>(result->total_gain),
                result->anchor_edges.size() + result->anchor_vertices.size(),
                result->seconds);
  }

  atr::StatusOr<atr::SolveResult> cancelled = doomed.Wait();
  if (cancelled.ok()) {
    std::printf("cancelled job: stopped_early=%d with %zu of %u anchors\n",
                cancelled->stopped_early, cancelled->anchor_edges.size(),
                doomed_options.budget);
  } else {
    std::printf("cancelled job: %s\n", cancelled.status().message().c_str());
  }

  // Streaming update: a few edges churn on the social graph. The new
  // snapshot version is seeded from the old one across the edge-id remap;
  // in-flight work keeps its pinned version, and the build counter below
  // stays at 1.
  {
    const atr::GraphSnapshot before = service.Snapshot("social").value();
    atr::GraphDelta delta;
    delta.remove.push_back(before.graph->Edge(0));
    delta.remove.push_back(before.graph->Edge(1));
    for (atr::VertexId u = 0, added = 0;
         u < before.graph->NumVertices() && added < 2; ++u) {
      for (atr::VertexId v = u + 1;
           v < before.graph->NumVertices() && added < 2; ++v) {
        if (!before.graph->HasEdge(u, v)) {
          delta.add.push_back(atr::EdgeEndpoints{u, v});
          ++added;
        }
      }
    }
    const atr::GraphSnapshot after =
        service.UpdateGraph("social", delta).value();
    std::printf(
        "streamed delta on social: -%zu +%zu edges, version %llu -> %llu\n",
        delta.remove.size(), delta.add.size(),
        static_cast<unsigned long long>(before.version),
        static_cast<unsigned long long>(after.version));
    atr::SolverOptions options;
    options.budget = budget;
    const atr::SolveResult fresh =
        service.Submit("social", "gas", options).value().Wait().value();
    std::printf("gas on the new version: gain %llu\n",
                static_cast<unsigned long long>(fresh.total_gain));
  }

  for (const std::string& name : service.GraphNames()) {
    const atr::AtrService::GraphInfo info = service.Info(name).value();
    std::printf(
        "graph %-6s  jobs=%llu  decomposition_builds=%u  k_max=%u  "
        "version=%llu\n",
        info.name.c_str(), static_cast<unsigned long long>(info.jobs_submitted),
        info.decomposition_builds, info.max_trussness,
        static_cast<unsigned long long>(info.version));
  }
  return 0;
}
