// Application 2 of the paper's introduction: hardening a transportation
// network. Road networks are geometry-dominated, so we model one as a
// random geometric graph, identify the b links whose reinforcement
// (anchoring) best stabilizes the network through the unified solver API,
// and contrast them with the links a deletion-criticality analysis would
// have picked.

#include <cstdio>

#include "api/engine.h"
#include "core/edge_deletion.h"
#include "graph/generators/generators.h"
#include "util/table_printer.h"

int main() {
  const uint32_t budget = 5;
  // ~900 intersections on the unit square, links between nearby ones.
  atr::AtrEngine engine(
      atr::RandomGeometricGraph(900, 0.065, /*seed=*/11));
  const atr::Graph& g = engine.graph();
  std::printf("road network: %u intersections, %u links, k_max=%u\n\n",
              g.NumVertices(), g.NumEdges(), engine.MaxTrussness());

  atr::SolverOptions options;
  options.budget = budget;
  const atr::StatusOr<atr::SolveResult> gas = engine.Run("gas", options);
  if (!gas.ok()) {
    std::fprintf(stderr, "gas failed: %s\n", gas.status().message().c_str());
    return 1;
  }
  std::printf("reinforced links chosen by GAS (budget %u):\n", budget);
  for (size_t i = 0; i < gas->rounds.size(); ++i) {
    const atr::EdgeEndpoints ends = g.Edge(gas->rounds[i].anchor);
    std::printf("  link (%u, %u): stabilizes %u neighboring links\n", ends.u,
                ends.v, gas->rounds[i].gain);
  }

  const atr::EdgeDeletionResult critical =
      atr::RunEdgeDeletionBaseline(g, budget);

  atr::TablePrinter table({"Selection policy", "Stability gain"});
  table.AddRow({"Reinforce GAS anchors",
                atr::TablePrinter::FormatInt(gas->total_gain)});
  table.AddRow({"Reinforce deletion-critical links",
                atr::TablePrinter::FormatInt(critical.total_gain)});
  table.Print();
  std::printf(
      "\nreading: the links whose FAILURE would hurt most are not the links "
      "whose REINFORCEMENT helps most — anchoring only lifts links at the "
      "anchor's own cohesion level or above (the paper's Fig. 7 insight).\n");
  return 0;
}
