// Application 1 of the paper's introduction: reinforcing a social network's
// overall engagement by anchoring key relationships. Compares GAS against
// the vertex-anchoring alternative (AKT) and random strengthening through
// one AtrEngine session, and shows which trussness levels each approach
// improves.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "api/engine.h"
#include "graph/generators/social_profiles.h"
#include "truss/decomposition.h"
#include "util/table_printer.h"

namespace {

std::map<uint32_t, uint32_t> GainByLevel(const atr::Graph& g,
                                         const atr::TrussDecomposition& base,
                                         const std::vector<atr::EdgeId>& set) {
  std::vector<bool> anchored(g.NumEdges(), false);
  for (atr::EdgeId e : set) anchored[e] = true;
  const atr::TrussDecomposition after =
      atr::ComputeTrussDecomposition(g, anchored);
  std::map<uint32_t, uint32_t> by_level;
  for (atr::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (anchored[e]) continue;
    if (after.trussness[e] > base.trussness[e]) ++by_level[base.trussness[e]];
  }
  return by_level;
}

atr::SolveResult MustRun(atr::AtrEngine& engine, const std::string& solver,
                         const atr::SolverOptions& options) {
  atr::StatusOr<atr::SolveResult> result = engine.Run(solver, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", solver.c_str(),
                 result.status().message().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

}  // namespace

int main() {
  const uint32_t budget = 10;
  atr::AtrEngine engine(atr::MakeSocialProfile("facebook", 0.15, /*seed=*/3));
  const atr::Graph& g = engine.graph();
  std::printf(
      "friendship network: %u users, %u ties, deepest community level %u\n\n",
      g.NumVertices(), g.NumEdges(), engine.MaxTrussness());

  atr::SolverOptions options;
  options.budget = budget;

  // Strengthen b ties with GAS.
  const atr::SolveResult gas = MustRun(engine, "gas", options);

  // Alternative 1: retain b influential users (AKT) at its best k. Every
  // level reuses the engine's cached decomposition.
  uint64_t best_akt = 0;
  uint32_t best_k = 0;
  for (uint32_t k = 4; k <= engine.MaxTrussness() + 1; k += 2) {
    const atr::SolveResult akt =
        MustRun(engine, "akt:" + std::to_string(k), options);
    if (akt.total_gain > best_akt) {
      best_akt = akt.total_gain;
      best_k = k;
    }
  }

  // Alternative 2: strengthen b random strong ties.
  atr::SolverOptions sup_options;
  sup_options.budget = budget;
  sup_options.trials = 100;
  sup_options.seed = 5;
  const atr::SolveResult sup = MustRun(engine, "sup", sup_options);

  atr::TablePrinter table({"Strategy", "Engagement gain (trussness)"});
  table.AddRow({"GAS: anchor " + std::to_string(budget) + " ties",
                atr::TablePrinter::FormatInt(gas.total_gain)});
  table.AddRow({"AKT: retain " + std::to_string(budget) +
                    " users (best k=" + std::to_string(best_k) + ")",
                atr::TablePrinter::FormatInt(best_akt)});
  table.AddRow({"Random strong ties (best of 100 draws)",
                atr::TablePrinter::FormatInt(sup.total_gain)});
  table.Print();

  std::printf("\ncommunity levels improved by the GAS anchors:\n");
  const atr::TrussDecomposition& base = engine.Decomposition();
  for (const auto& [level, count] : GainByLevel(g, base, gas.anchor_edges)) {
    std::printf("  %u ties moved from cohesion level %u to %u\n", count,
                level, level + 1);
  }
  std::printf(
      "\nreading: anchored ties keep supporting their communities even if "
      "the users at their endpoints go quiet, so the whole engagement "
      "hierarchy shifts up.\n");
  return 0;
}
