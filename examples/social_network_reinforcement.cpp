// Application 1 of the paper's introduction: reinforcing a social network's
// overall engagement by anchoring key relationships. Compares GAS against
// the vertex-anchoring alternative (AKT) and random strengthening, and
// shows which trussness levels each approach improves.

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/akt.h"
#include "core/gas.h"
#include "core/random_baselines.h"
#include "graph/generators/social_profiles.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/table_printer.h"

namespace {

std::map<uint32_t, uint32_t> GainByLevel(const atr::Graph& g,
                                         const atr::TrussDecomposition& base,
                                         const std::vector<atr::EdgeId>& set) {
  std::vector<bool> anchored(g.NumEdges(), false);
  for (atr::EdgeId e : set) anchored[e] = true;
  const atr::TrussDecomposition after =
      atr::ComputeTrussDecomposition(g, anchored);
  std::map<uint32_t, uint32_t> by_level;
  for (atr::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (anchored[e]) continue;
    if (after.trussness[e] > base.trussness[e]) ++by_level[base.trussness[e]];
  }
  return by_level;
}

}  // namespace

int main() {
  const uint32_t budget = 10;
  const atr::Graph g = atr::MakeSocialProfile("facebook", 0.15, /*seed=*/3);
  const atr::TrussDecomposition base = atr::ComputeTrussDecomposition(g);
  std::printf(
      "friendship network: %u users, %u ties, deepest community level %u\n\n",
      g.NumVertices(), g.NumEdges(), base.max_trussness);

  // Strengthen b ties with GAS.
  const atr::AnchorResult gas = atr::RunGas(g, budget);

  // Alternative 1: retain b influential users (AKT) at its best k.
  uint64_t best_akt = 0;
  uint32_t best_k = 0;
  for (uint32_t k = 4; k <= base.max_trussness + 1; k += 2) {
    const atr::AktResult akt = atr::RunAkt(g, base, k, budget);
    if (akt.total_gain > best_akt) {
      best_akt = akt.total_gain;
      best_k = k;
    }
  }

  // Alternative 2: strengthen b random strong ties.
  const atr::RandomBaselineResult sup = atr::RunRandomBaseline(
      g, atr::RandomPoolKind::kTopSupport, {budget}, 100, 5);

  atr::TablePrinter table({"Strategy", "Engagement gain (trussness)"});
  table.AddRow({"GAS: anchor " + std::to_string(budget) + " ties",
                atr::TablePrinter::FormatInt(gas.total_gain)});
  table.AddRow({"AKT: retain " + std::to_string(budget) +
                    " users (best k=" + std::to_string(best_k) + ")",
                atr::TablePrinter::FormatInt(best_akt)});
  table.AddRow({"Random strong ties (best of 100 draws)",
                atr::TablePrinter::FormatInt(sup.best_gain)});
  table.Print();

  std::printf("\ncommunity levels improved by the GAS anchors:\n");
  for (const auto& [level, count] : GainByLevel(g, base, gas.anchors)) {
    std::printf("  %u ties moved from cohesion level %u to %u\n", count,
                level, level + 1);
  }
  std::printf(
      "\nreading: anchored ties keep supporting their communities even if "
      "the users at their endpoints go quiet, so the whole engagement "
      "hierarchy shifts up.\n");
  return 0;
}
